"""Routing tables for switch nodes, including ECMP over uplinks.

Besides the per-switch :class:`EcmpRoutingTable`, this module provides the
fabric-level helpers multi-stage topologies (leaf-spine, fat-tree) build on:

* :func:`trace_path` -- the concrete switch path one flow's packets take,
  resolved hop by hop through the same hash the data path uses;
* :class:`PathEnumerator` -- every ECMP-eligible path between two hosts,
  memoized per (switch, destination) subproblem so enumerating all paths of
  a k-ary fat-tree costs one DFS per distinct suffix instead of one per
  source.

The table understands asymmetric fabrics: every uplink carries a *capacity
weight* (flows spread proportionally to it -- WCMP-style member selection),
an uplink can be *disabled* outright (its link failed), and an uplink can be
*excluded for specific destination hosts* (it is alive, but the only way from
its far end to those hosts crosses a failed link).  With default weights and
no failures every code path degenerates to the classic uniform ECMP hash, so
symmetric fabrics behave byte-identically to the pre-fabric-model code.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.switchsim.packet import Packet

#: Cap on the per-member slots of the weighted selection vector, bounding its
#: size for extreme capacity ratios (a 100:1 link pair still yields 64:1).
MAX_WEIGHT_SLOTS = 64


def _mix(a: int, b: int, c: int) -> int:
    """A small deterministic integer hash (stable across runs/processes)."""
    h = (a * 0x9E3779B1) ^ (b * 0x85EBCA77) ^ (c * 0xC2B2AE3D)
    h ^= h >> 13
    h *= 0x27D4EB2F
    h &= 0xFFFFFFFF
    h ^= h >> 16
    return h


def switch_salt(name: str) -> int:
    """A deterministic 32-bit ECMP salt for the switch called ``name``.

    CRC32 of the name bytes: stable across processes and Python versions
    (unlike ``hash(str)``), so salted path choices stay byte-identical
    between a serial run and ``--jobs N`` workers.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class EcmpRoutingTable:
    """Destination-host routing with ECMP spreading over uplink ports.

    Routes are looked up in two steps: an exact per-destination-host entry
    (downlinks / locally attached hosts), falling back to an ECMP hash over
    the registered uplink ports.  The hash covers (src, dst, flow id) so all
    packets of one flow take the same path -- no reordering due to routing.

    ``salt`` perturbs the hash per switch.  With the default of 0 every
    table hashes identically, which is fine for single-ECMP-stage fabrics
    (leaf-spine) but polarizes multi-stage ones: when consecutive stages
    have the same fan-out, every switch of stage N+1 repeats stage N's
    choice and most equal-cost paths never carry traffic.  Multi-stage
    topologies must give each switch a distinct deterministic salt (see
    :func:`switch_salt`).
    """

    def __init__(self, salt: int = 0) -> None:
        self._salt = salt & 0xFFFFFFFF
        self._host_routes: Dict[int, int] = {}
        self._uplinks: List[int] = []
        #: Capacity weight per uplink port (absent = 1.0).  Flows spread
        #: proportionally: a port with twice the weight receives ~twice the
        #: flows (WCMP member replication).
        self._weights: Dict[int, float] = {}
        #: Uplinks whose link failed outright: never candidates, for any dst.
        self._disabled: Set[int] = set()
        #: Per-destination exclusions: dst host -> ports that must not be
        #: used towards it (the far end cannot reach the dst without
        #: crossing a failed link).
        self._excluded: Dict[int, Set[int]] = {}
        #: Memoized ECMP picks keyed by (src, dst, flow_id).  The hash is a
        #: pure function of that key and the uplink list, so per-flow lookups
        #: replace recomputing the mix for every packet; any topology change
        #: invalidates the cache.
        self._ecmp_cache: Dict[tuple, int] = {}
        #: Memoized selection vectors: ``None`` key = the dst-independent
        #: vector, int keys = per-destination vectors for excluded dsts.
        self._selections: Dict[Optional[int], List[int]] = {}
        #: Memoized surviving-member lists, keyed like ``_selections``.
        #: Load balancers resolve candidates per packet, so the list must
        #: not be rebuilt per call; callers treat it as read-only.
        self._candidates: Dict[Optional[int], List[int]] = {}

    # -- mutation ------------------------------------------------------
    def _invalidate(self) -> None:
        self._ecmp_cache.clear()
        self._selections.clear()
        self._candidates.clear()

    def add_host_route(self, dst_host: int, port_id: int) -> None:
        """Send traffic for ``dst_host`` out of ``port_id``."""
        self._host_routes[dst_host] = port_id
        self._invalidate()

    def add_uplink(self, port_id: int) -> None:
        """Register an uplink port participating in ECMP."""
        if port_id not in self._uplinks:
            self._uplinks.append(port_id)
            self._invalidate()

    def add_uplinks(self, port_ids) -> None:
        for port_id in port_ids:
            self.add_uplink(port_id)

    def set_uplink_weight(self, port_id: int, weight: float) -> None:
        """Set the capacity weight of an uplink (flows spread ~ weight)."""
        if not weight > 0:
            raise ValueError(f"uplink weight must be positive, got {weight!r}")
        if port_id not in self._uplinks:
            raise ValueError(f"port {port_id} is not a registered uplink")
        self._weights[port_id] = weight
        self._invalidate()

    def disable_uplink(self, port_id: int) -> None:
        """Remove an uplink from every candidate set (its link failed)."""
        if port_id not in self._uplinks:
            raise ValueError(f"port {port_id} is not a registered uplink")
        self._disabled.add(port_id)
        self._invalidate()

    def enable_uplink(self, port_id: int) -> None:
        """Re-admit a previously disabled uplink (its link was repaired)."""
        if port_id not in self._uplinks:
            raise ValueError(f"port {port_id} is not a registered uplink")
        if port_id in self._disabled:
            self._disabled.discard(port_id)
            self._invalidate()

    def clear_exclusions(self) -> None:
        """Drop every per-destination exclusion (re-derived after repairs).

        Exclusions encode reachability under a *specific* failure set; a
        repair can only widen reachability, so the sound refresh is to clear
        them all and re-run :meth:`~repro.netsim.network.Network.
        prune_failed_routes` against the remaining failures.
        """
        if self._excluded:
            self._excluded.clear()
            self._invalidate()

    def exclude_uplink_for(self, port_id: int, dst_host: int) -> None:
        """Exclude ``port_id`` for traffic towards ``dst_host`` only."""
        if port_id not in self._uplinks:
            raise ValueError(f"port {port_id} is not a registered uplink")
        self._excluded.setdefault(dst_host, set()).add(port_id)
        self._invalidate()

    @property
    def salt(self) -> int:
        return self._salt

    def set_salt(self, salt: int) -> None:
        """Set the per-switch hash salt (invalidates memoized picks)."""
        self._salt = salt & 0xFFFFFFFF
        self._invalidate()

    @property
    def uplinks(self) -> List[int]:
        return list(self._uplinks)

    @property
    def disabled_uplinks(self) -> List[int]:
        return sorted(self._disabled)

    def uplink_weight(self, port_id: int) -> float:
        return self._weights.get(port_id, 1.0)

    # -- selection -----------------------------------------------------
    def _surviving_members(self, dst: int) -> List[int]:
        """Uplinks still eligible towards ``dst`` (not failed, not excluded).

        The single place routing and path enumeration agree on which ECMP
        members survive; raises when the destination has none left.
        """
        excluded = self._excluded.get(dst)
        members = [p for p in self._uplinks if p not in self._disabled
                   and (excluded is None or p not in excluded)]
        if not members:
            raise LookupError(
                f"no surviving uplink towards host {dst}: all of "
                f"{self._uplinks} are failed or excluded")
        return members

    def _selection_for(self, dst: int) -> List[int]:
        """The weighted member-selection vector for traffic towards ``dst``.

        With uniform weights and no failures this is exactly the uplink list
        (so ``hash % len`` reproduces the classic ECMP pick); otherwise each
        eligible port appears ``round(weight / min_weight)`` times, spreading
        flows proportionally to capacity.
        """
        key = dst if dst in self._excluded else None
        selection = self._selections.get(key)
        if selection is not None:
            return selection
        members = self._surviving_members(dst)
        weights = [self._weights.get(p, 1.0) for p in members]
        min_weight = min(weights)
        selection = []
        for port, weight in zip(members, weights, strict=True):
            slots = round(weight / min_weight)
            selection.extend([port] * min(MAX_WEIGHT_SLOTS, max(1, slots)))
        self._selections[key] = selection
        return selection

    # -- lookup --------------------------------------------------------
    def route(self, packet: Packet) -> int:
        """Return the egress port for ``packet``."""
        return self.egress_for(packet.src, packet.dst, packet.flow_id)

    def egress_for(self, src: int, dst: int, flow_id: int) -> int:
        """The egress port for flow ``flow_id``'s packets towards ``dst``.

        The single ECMP resolution point: the data path (:meth:`route`) and
        the path-introspection helpers below all go through it and share one
        memo, so a traced path is exactly the one the packets take.
        """
        port = self._host_routes.get(dst)
        if port is not None:
            return port
        key = (src, dst, flow_id)
        port = self._ecmp_cache.get(key)
        if port is None:
            if not self._uplinks:
                raise LookupError(
                    f"no route for destination host {dst} "
                    "and no uplinks configured"
                )
            selection = self._selection_for(dst)
            index = _mix(src ^ self._salt, dst, flow_id) % len(selection)
            port = selection[index]
            self._ecmp_cache[key] = port
        return port

    def candidate_ports(self, dst: int) -> List[int]:
        """Every port a packet towards ``dst`` may leave through.

        One port for an exact host route, otherwise the surviving uplinks
        (the ECMP spread minus failed/excluded members).  This is the
        branching set path enumeration walks (so enumerated paths provably
        avoid failed links) and the candidate set load balancers choose
        from per packet -- hence the member list is memoized like the
        selection vectors; treat the returned list as read-only.
        """
        port = self._host_routes.get(dst)
        if port is not None:
            members = self._candidates.get(dst)
            if members is None:
                members = [port]
                self._candidates[dst] = members
            return members
        if not self._uplinks:
            raise LookupError(
                f"no route for destination host {dst} and no uplinks configured"
            )
        key = dst if dst in self._excluded else None
        members = self._candidates.get(key)
        if members is None:
            members = self._surviving_members(dst)
            self._candidates[key] = members
        return members


def _next_node(node, port: int):
    """The node behind ``port`` of ``node`` (switch or host), or an error."""
    link = node.link_for(port)
    if link is None:
        raise LookupError(f"switch {node.name} port {port} has no attached link")
    return link.dst_node


def trace_path(node, src: int, dst: int, flow_id: int,
               max_hops: int = 32) -> Tuple[str, ...]:
    """The switch names flow ``flow_id`` traverses from ``node`` to ``dst``.

    Walks the routing tables hop by hop with the same (src, dst, flow_id)
    hash the data path uses, so the returned path is exactly the one the
    flow's packets take.  Raises ``LookupError`` on a routing loop or a
    misdelivery (arriving at a host other than ``dst``).
    """
    path: List[str] = []
    current = node
    for _ in range(max_hops):
        path.append(current.name)
        port = current.routing.egress_for(src, dst, flow_id)
        nxt = _next_node(current, port)
        if not hasattr(nxt, "routing"):  # reached a host NIC
            if getattr(nxt, "host_id", dst) != dst:
                raise LookupError(
                    f"flow {flow_id} towards host {dst} was delivered to "
                    f"host {nxt.host_id} via {current.name} port {port}"
                )
            return tuple(path)
        current = nxt
    raise LookupError(
        f"no path to host {dst} within {max_hops} hops (routing loop?): "
        + " -> ".join(path)
    )


class PathEnumerator:
    """Enumerates every ECMP-eligible switch path towards a destination host.

    The DFS branches over :meth:`EcmpRoutingTable.candidate_ports` at each
    stage and memoizes the suffix set per (switch, destination): on a k-ary
    fat-tree every edge switch of a pod shares its aggregation switches'
    (and their cores') suffixes, so enumerating all ``(k/2)^2`` inter-pod
    paths costs one walk over the fabric instead of one DFS per source.
    A topology change (including failure injection) invalidates the
    enumerator -- build a fresh one.
    """

    def __init__(self, max_hops: int = 32) -> None:
        self.max_hops = max_hops
        self._memo: Dict[Tuple[int, int], Tuple[Tuple[str, ...], ...]] = {}

    def paths(self, node, dst: int) -> List[Tuple[str, ...]]:
        """All switch-name paths from ``node`` to host ``dst``, sorted."""
        return sorted(self._paths(node, dst, self.max_hops))

    def _paths(self, node, dst: int,
               budget: int) -> Tuple[Tuple[str, ...], ...]:
        if budget <= 0:
            raise LookupError(
                f"no path to host {dst} within {self.max_hops} hops "
                f"(routing loop through {node.name}?)"
            )
        key = (id(node), dst)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        found: List[Tuple[str, ...]] = []
        for port in node.routing.candidate_ports(dst):
            nxt = _next_node(node, port)
            if not hasattr(nxt, "routing"):
                if getattr(nxt, "host_id", dst) == dst:
                    found.append((node.name,))
                continue
            for suffix in self._paths(nxt, dst, budget - 1):
                found.append((node.name,) + suffix)
        if not found:
            raise LookupError(f"switch {node.name} has no path to host {dst}")
        result = tuple(found)
        self._memo[key] = result
        return result
