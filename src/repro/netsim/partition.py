"""Fabric partitioning for the sharded conservative-parallel engine.

A :class:`Partition` splits one built topology into ``num_shards`` disjoint
node sets ("shards") by cutting the fabric graph **at link boundaries**: every
node (switch or host) is owned by exactly one shard, and a link whose two
endpoints live in different shards becomes a *cut link*.  The sharded
executor (:mod:`repro.sim.shard`) runs each shard in its own process and
ferries the packets that cross cut links between processes, synchronizing
conservatively with a lookahead equal to the **minimum cut-link propagation
delay** -- a packet transmitted at time ``t`` cannot influence the far side
before ``t + delay``, so every shard may freely execute a window of that
length before the next exchange (the FireSim-style token rule).

Two things make a cut valid, both checked here and surfaced as loud
``ValueError`` at validation time rather than as a hang mid-run:

* every cut link must have **positive delay** (a zero-delay cut has zero
  lookahead: the conservative window collapses and no parallelism exists);
* the assignment must **cover every node exactly once** and leave no shard
  empty.

Strategies (``engine.partition``):

* ``auto`` -- topology-aware: pod cut for ``fat_tree`` (a pod's hosts, edge
  and aggregation switches stay together; cores are distributed in
  contiguous blocks, so only agg<->core links are cut), leaf cut for
  ``leaf_spine`` (leaves + their hosts together, spines distributed; only
  leaf<->spine links are cut), and the generic cut below for everything
  else.
* ``contiguous`` -- the generic fallback: contiguous switch blocks in
  ``all_switches()`` order with hosts following their access switch, or --
  when there are fewer switches than shards -- contiguous host blocks with
  all switches in shard 0 (host<->switch links become the cut; this is how
  a ``single_switch`` incast shards).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netsim.network import Network, host_node_name

#: Registry names accepted by ``engine.partition``.
PARTITION_STRATEGIES = ("auto", "pods", "leaves", "contiguous")


@dataclass
class Partition:
    """One validated shard assignment over a built topology.

    Attributes:
        num_shards: shard count (processes the executor will spawn).
        strategy: the strategy that produced the assignment.
        assignment: node name -> owning shard id, covering every switch
            name and every host (as ``h<id>``) exactly once.
        cut_links: directed cut links as ``(src_name, dst_name)`` pairs in
            deterministic (sorted) order; the index into this list is the
            link's stable *handoff id* on every shard.
        lookahead: the conservative synchronization window in seconds --
            the minimum propagation delay over all cut links.
    """

    num_shards: int
    strategy: str
    assignment: Dict[str, int]
    cut_links: List[Tuple[str, str]] = field(default_factory=list)
    lookahead: float = 0.0

    def shard_of(self, name: str) -> int:
        return self.assignment[name]

    def counts(self) -> List[int]:
        """Nodes per shard (diagnostics, balance checks)."""
        counts = [0] * self.num_shards
        for shard in self.assignment.values():
            counts[shard] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "assignment": dict(sorted(self.assignment.items())),
            "cut_links": [list(pair) for pair in self.cut_links],
            "lookahead": self.lookahead,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Partition":
        return cls(
            num_shards=int(data["num_shards"]),
            strategy=str(data["strategy"]),
            assignment={str(k): int(v)
                        for k, v in dict(data["assignment"]).items()},
            cut_links=[(str(a), str(b)) for a, b in data["cut_links"]],
            lookahead=float(data["lookahead"]),
        )


def _block(index: int, total: int, num_shards: int) -> int:
    """Balanced contiguous block assignment: item ``index`` of ``total``."""
    return index * num_shards // total


def _fat_tree_assignment(topology, num_shards: int) -> Dict[str, int]:
    """Pod cut: a pod's hosts + edges + aggs share a shard; cores spread.

    Only agg<->core links cross shards, so the lookahead is the core-tier
    propagation delay (``base_rtt / 12``) and intra-pod traffic never pays
    a handoff.
    """
    k = topology.k
    if num_shards > k:
        raise ValueError(
            f"fat_tree pod cut supports at most one shard per pod: "
            f"k={k} pods < {num_shards} shards")
    assignment: Dict[str, int] = {}
    half = k // 2
    for pod in range(k):
        shard = _block(pod, k, num_shards)
        for e in range(half):
            assignment[f"edge{pod}_{e}"] = shard
            assignment[f"agg{pod}_{e}"] = shard
    num_cores = half * half
    for c in range(num_cores):
        assignment[f"core{c}"] = _block(c, num_cores, num_shards)
    for host_id in topology.hosts:
        assignment[host_node_name(host_id)] = _block(
            topology.pod_of_host(host_id), k, num_shards)
    return assignment


def _leaf_spine_assignment(topology, num_shards: int) -> Dict[str, int]:
    """Leaf cut: leaves + their hosts share a shard; spines spread."""
    num_leaves = topology.num_leaves
    if num_shards > num_leaves:
        raise ValueError(
            f"leaf_spine leaf cut supports at most one shard per leaf: "
            f"{num_leaves} leaves < {num_shards} shards")
    assignment: Dict[str, int] = {}
    for leaf_idx in range(num_leaves):
        assignment[f"leaf{leaf_idx}"] = _block(leaf_idx, num_leaves,
                                               num_shards)
    for spine_idx in range(topology.num_spines):
        assignment[f"spine{spine_idx}"] = _block(
            spine_idx, topology.num_spines, num_shards)
    for host_id, leaf_idx in topology.host_leaf.items():
        assignment[host_node_name(host_id)] = _block(leaf_idx, num_leaves,
                                                     num_shards)
    return assignment


def _contiguous_assignment(topology, num_shards: int) -> Dict[str, int]:
    """Generic cut: contiguous switch blocks, hosts follow their access
    switch; with fewer switches than shards, contiguous host blocks instead
    (all switches in shard 0, host links become the cut)."""
    network: Network = topology.network
    switch_names = [node.name for node in topology.all_switches()]
    assignment: Dict[str, int] = {}
    if len(switch_names) >= num_shards:
        for index, name in enumerate(switch_names):
            assignment[name] = _block(index, len(switch_names), num_shards)
        for host_id, host in sorted(network.hosts.items()):
            if host.link is None:
                raise ValueError(
                    f"host {host_id} has no access link; cannot partition")
            access = host.link.dst_node.name
            assignment[host_node_name(host_id)] = assignment[access]
    else:
        hosts = sorted(network.hosts)
        if len(hosts) < num_shards:
            raise ValueError(
                f"topology too small to partition: {len(switch_names)} "
                f"switches and {len(hosts)} hosts < {num_shards} shards")
        for name in switch_names:
            assignment[name] = 0
        for index, host_id in enumerate(hosts):
            assignment[host_node_name(host_id)] = _block(
                index, len(hosts), num_shards)
    return assignment


def partition_topology(topology, num_shards: int,
                       strategy: str = "auto") -> Partition:
    """Compute and validate a shard assignment for a built topology.

    Raises ``ValueError`` for any invalid cut: unknown strategy, too many
    shards for the topology, an empty shard, incomplete node cover, or a
    zero-delay cut link.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"available: {', '.join(PARTITION_STRATEGIES)}")
    network = getattr(topology, "network", None)
    if network is None:
        raise ValueError(
            "sharded execution needs a network-level topology "
            "(this topology has no network/link graph to cut)")

    resolved = strategy
    if strategy == "auto":
        if hasattr(topology, "pod_of_host"):
            resolved = "pods"
        elif hasattr(topology, "host_leaf"):
            resolved = "leaves"
        else:
            resolved = "contiguous"
    if resolved == "pods":
        if not hasattr(topology, "pod_of_host"):
            raise ValueError(
                "partition strategy 'pods' needs a fat_tree topology")
        assignment = _fat_tree_assignment(topology, num_shards)
    elif resolved == "leaves":
        if not hasattr(topology, "host_leaf"):
            raise ValueError(
                "partition strategy 'leaves' needs a leaf_spine topology")
        assignment = _leaf_spine_assignment(topology, num_shards)
    else:
        assignment = _contiguous_assignment(topology, num_shards)

    partition = Partition(num_shards=num_shards, strategy=resolved,
                          assignment=assignment)
    _validate(partition, network)
    return partition


def _validate(partition: Partition, network: Network) -> None:
    """Check cover, non-empty shards and positive cut delays; fill in the
    cut-link list and lookahead."""
    assignment = partition.assignment
    expected = ({name for name in network.switch_nodes}
                | {host_node_name(h) for h in network.hosts})
    assigned = set(assignment)
    missing = sorted(expected - assigned)
    extra = sorted(assigned - expected)
    if missing or extra:
        raise ValueError(
            "partition must cover every node exactly once; "
            f"missing: {missing[:8]!r}, unknown: {extra[:8]!r}")
    for name, shard in assignment.items():
        if not 0 <= shard < partition.num_shards:
            raise ValueError(
                f"node {name!r} assigned to shard {shard}, outside "
                f"0..{partition.num_shards - 1}")
    populated = {shard for shard in assignment.values()}
    if len(populated) != partition.num_shards:
        empty = sorted(set(range(partition.num_shards)) - populated)
        raise ValueError(
            f"partition leaves shards {empty} empty; use fewer shards or "
            "a different strategy")

    cut: List[Tuple[str, str]] = []
    lookahead = float("inf")
    for (src_name, dst_name), fabric in sorted(network.links.items()):
        if assignment[src_name] == assignment[dst_name]:
            continue
        delay = fabric.link.delay
        if not delay > 0:
            raise ValueError(
                f"cut link {src_name}->{dst_name} has zero propagation "
                "delay: the conservative lookahead would be zero.  Cut at "
                "links with positive delay (or use fewer shards)")
        cut.append((src_name, dst_name))
        lookahead = min(lookahead, delay)
    if partition.num_shards > 1 and not cut:
        raise ValueError(
            "partition produced no cut links despite multiple shards; "
            "the shard graph is disconnected from the fabric model")
    partition.cut_links = cut
    partition.lookahead = 0.0 if lookahead == float("inf") else lookahead
