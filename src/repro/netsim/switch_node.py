"""A network switch node: shared-memory traffic manager plus routing."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import BufferManager
from repro.netsim.link import Link
from repro.netsim.routing import EcmpRoutingTable
from repro.sim.engine import Simulator
from repro.switchsim.packet import Packet
from repro.switchsim.switch import SharedMemorySwitch, SwitchConfig


class SwitchNode:
    """Wraps a :class:`SharedMemorySwitch` with port-to-link wiring and routing."""

    def __init__(self, name: str, sim: Simulator, config: SwitchConfig,
                 manager: BufferManager) -> None:
        self.name = name
        self.sim = sim
        self.switch = SharedMemorySwitch(
            config, manager, sim, on_transmit=self._on_transmit
        )
        self.routing = EcmpRoutingTable()
        self._links: Dict[int, Link] = {}
        #: Packets that arrived for a port with no attached link (misconfig).
        self.undeliverable = 0
        #: The bound load-balancer policy; ``None`` for the ecmp default
        #: (the passthrough never swaps the data path, see
        #: :meth:`set_load_balancer`).
        self.lb = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, port_id: int, link: Link) -> None:
        """Attach the outgoing ``link`` to egress ``port_id``.

        A link carrying its own rate identity retunes the port: packets
        serialize at the *link's* effective rate, not the switch-wide
        nominal rate (per-tier rates, degraded links).
        """
        if not 0 <= port_id < self.switch.port_count:
            raise ValueError(f"switch {self.name} has no port {port_id}")
        self._links[port_id] = link
        rate = link.effective_rate_bps
        if rate is not None and rate != self.switch.ports[port_id].rate_bps:
            self.switch.set_port_rate(port_id, rate)

    def link_for(self, port_id: int) -> Optional[Link]:
        return self._links.get(port_id)

    def set_load_balancer(self, lb) -> None:
        """Bind an uplink-choice policy (:mod:`repro.lb`) at attach time.

        A passthrough policy (the ``ecmp`` default) or ``None`` restores the
        direct data path: no instance-level ``deliver`` override exists and
        ``self.lb`` stays ``None``, so the per-packet cost of the default is
        exactly the pre-LB code -- no branch, no delegate.  Any other policy
        is bound (``lb.bind``) and the node's ``deliver`` is swapped for the
        delegating variant, the same method-swap idiom ``Link.set_failed``
        uses.
        """
        if lb is None or lb.passthrough:
            self.lb = None
            self.__dict__.pop("deliver", None)
            return
        self.lb = lb
        lb.bind(self)
        self.deliver = self._deliver_lb  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Handle a packet arriving on an ingress link: route and admit it."""
        out_port = self.routing.route(packet)
        self.switch.receive(packet, out_port)

    def _deliver_lb(self, packet: Packet) -> None:
        """``deliver`` with a bound load balancer (see ``set_load_balancer``).

        Host routes and single-survivor candidate sets bypass the policy
        (there is no choice to make), so downlink hops cost one memoized
        lookup and the policy only ever sees genuine multi-uplink decisions.
        """
        candidates = self.routing.candidate_ports(packet.dst)
        if len(candidates) == 1:
            out_port = candidates[0]
        else:
            out_port = self.lb.choose(packet, candidates)
        self.switch.receive(packet, out_port)

    def _on_transmit(self, packet: Packet, port_id: int) -> None:
        link = self._links.get(port_id)
        if link is None:
            self.undeliverable += 1
            pool = self.sim.kernel.packet_pool
            if pool is not None:
                # No link attached (misconfig): the drop is this packet's
                # death site on the pooled kernel.
                pool.release(packet)
            return
        link.transmit(packet)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.switch.stats

    @property
    def manager(self) -> BufferManager:
        return self.switch.manager

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<SwitchNode {self.name} ports={self.switch.port_count}>"
