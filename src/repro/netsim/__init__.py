"""Packet-level network simulator built around the shared-memory switch model.

Hosts run window-based transports (DCTCP, Reno, CUBIC); switches are
:class:`repro.switchsim.SharedMemorySwitch` instances wrapped in
:class:`SwitchNode` objects that add routing; links add propagation delay.
The :class:`Network` class wires everything together, injects
:class:`repro.workloads.FlowSpec` workloads and collects flow/query
completion times.
"""

from repro.netsim.link import Link
from repro.netsim.host import Host
from repro.netsim.routing import EcmpRoutingTable, switch_salt
from repro.netsim.switch_node import SwitchNode
from repro.netsim.network import Network
from repro.netsim.transport import (
    CubicTransport,
    DctcpTransport,
    ReceiverState,
    RenoTransport,
    SenderTransport,
    TransportConfig,
    make_transport,
)

__all__ = [
    "CubicTransport",
    "DctcpTransport",
    "EcmpRoutingTable",
    "Host",
    "Link",
    "Network",
    "ReceiverState",
    "RenoTransport",
    "SenderTransport",
    "SwitchNode",
    "TransportConfig",
    "make_transport",
    "switch_salt",
]
