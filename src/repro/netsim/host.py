"""End hosts: a rate-limited NIC plus per-flow transport endpoints."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.sim.engine import Simulator
from repro.switchsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.link import Link
    from repro.netsim.transport.base import ReceiverState, SenderTransport


class Host:
    """A host with one NIC: FIFO transmit queue, line-rate serialization.

    Senders (:class:`SenderTransport`) and receivers (:class:`ReceiverState`)
    for individual flows register with the host; the host demultiplexes
    arriving packets to them by flow id and serializes outgoing packets at the
    NIC rate.
    """

    def __init__(self, host_id: int, sim: Simulator, nic_rate_bps: float) -> None:
        if nic_rate_bps <= 0:
            raise ValueError("NIC rate must be positive")
        self.host_id = host_id
        self.sim = sim
        self.nic_rate_bps = nic_rate_bps
        self.link: Optional["Link"] = None

        self._tx_queue: Deque[Packet] = deque()
        self._tx_busy = False
        #: Packet currently serializing on the NIC (valid while ``_tx_busy``);
        #: kept here so the transmit loop schedules one prebuilt bound method
        #: instead of allocating a closure per packet.
        self._tx_inflight: Optional[Packet] = None

        self.senders: Dict[int, "SenderTransport"] = {}
        self.receivers: Dict[int, "ReceiverState"] = {}

        # Pooled kernel: the host is where every delivered packet dies (ACKs
        # after on_ack, data after on_data), so bind the recycling receive
        # path once at construction -- the ``set_failed`` idiom, zero cost on
        # the default kernel.
        self._packet_pool = sim.kernel.packet_pool
        if self._packet_pool is not None:
            self.deliver = self._deliver_pooled  # type: ignore[method-assign]
            #: Prebound release (one per delivered packet -- hot).
            self._packet_release = self._packet_pool.release

        # Statistics.
        self.sent_packets = 0
        self.sent_bytes = 0
        self.received_packets = 0
        self.received_bytes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_link(self, link: "Link") -> None:
        """Attach the uplink towards the access switch.

        A link carrying its own rate identity retunes the NIC: the host
        serializes at the *link's* effective rate (degraded host uplinks).
        """
        self.link = link
        rate = link.effective_rate_bps
        if rate is not None:
            self.nic_rate_bps = rate

    def add_sender(self, transport: "SenderTransport") -> None:
        self.senders[transport.spec.flow_id] = transport

    def add_receiver(self, receiver: "ReceiverState") -> None:
        self.receivers[receiver.spec.flow_id] = receiver

    def sender_finished(self, transport: "SenderTransport") -> None:
        """Hook invoked by a sender when its last byte is acknowledged."""
        # Keep the entry so late ACKs are silently absorbed; nothing to do.

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send_packet(self, packet: Packet) -> None:
        """Queue a packet for transmission on the NIC."""
        if self.link is None:
            raise RuntimeError(f"host {self.host_id} has no attached link")
        self._tx_queue.append(packet)
        self._try_transmit()

    def _try_transmit(self) -> None:
        if self._tx_busy or not self._tx_queue:
            return
        packet = self._tx_queue.popleft()
        self._tx_busy = True
        self._tx_inflight = packet
        delay = packet.size_bytes * 8 / self.nic_rate_bps
        self.sim.schedule_fast(delay, self._finish_transmit)

    def _finish_transmit(self) -> None:
        packet = self._tx_inflight
        self._tx_inflight = None
        self._tx_busy = False
        self.sent_packets += 1
        self.sent_bytes += packet.size_bytes
        assert self.link is not None
        self.link.transmit(packet)
        self._try_transmit()

    @property
    def tx_backlog_packets(self) -> int:
        return len(self._tx_queue)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Handle a packet arriving from the access link."""
        self.received_packets += 1
        self.received_bytes += packet.size_bytes
        if packet.is_ack:
            sender = self.senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)
            return
        receiver = self.receivers.get(packet.flow_id)
        if receiver is None:
            # Data for an unknown flow (e.g. arrived after completion bookkeeping
            # was torn down in a test); drop silently.
            return
        ack = receiver.on_data(packet, self.sim.now)
        self.send_packet(ack)

    def _deliver_pooled(self, packet: Packet) -> None:
        """:meth:`deliver` for the pooled kernel (kept in lockstep).

        Delivery is where packets die: ACKs are released once the sender has
        consumed them, data packets once the receiver has produced the ACK
        (the ACK itself is freshly acquired inside ``on_data``, so the data
        packet is still live at that point).
        """
        self.received_packets += 1
        self.received_bytes += packet.size_bytes
        release = self._packet_release
        if packet.is_ack:
            sender = self.senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)
            release(packet)
            return
        receiver = self.receivers.get(packet.flow_id)
        if receiver is None:
            # Data for an unknown flow; the drop is this packet's death.
            release(packet)
            return
        ack = receiver.on_data(packet, self.sim.now)
        release(packet)
        self.send_packet(ack)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Host {self.host_id} rate={self.nic_rate_bps / 1e9:.0f}Gbps>"
