"""Unidirectional links with propagation delay.

Serialization delay is modelled by the *sender* (a host NIC or a switch egress
port), so a link only adds propagation delay and hands the packet to the
receiving node's ``deliver`` method.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Protocol

from repro.sim.engine import Simulator
from repro.switchsim.packet import Packet


class Deliverable(Protocol):
    """Anything that can receive packets from a link (hosts, switch nodes)."""

    def deliver(self, packet: Packet) -> None: ...


class Link:
    """A unidirectional link towards ``dst_node`` with fixed propagation delay."""

    def __init__(self, sim: Simulator, dst_node: Deliverable, delay: float,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.dst_node = dst_node
        self.delay = delay
        self.name = name
        self.packets_carried = 0
        self.bytes_carried = 0
        #: Packets currently propagating, in arrival order.  The propagation
        #: delay is constant, so departures arrive FIFO and one prebuilt
        #: bound method can deliver them without per-packet closures (events
        #: scheduled at equal timestamps also fire in scheduling order, so
        #: the pop order always matches the event order).
        self._in_flight: Deque[Packet] = deque()

    def transmit(self, packet: Packet) -> None:
        """Start propagating ``packet``; it arrives ``delay`` seconds later."""
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        if self.delay == 0:
            self.dst_node.deliver(packet)
        else:
            self._in_flight.append(packet)
            self.sim.schedule_fast(self.delay, self._arrive)

    def _arrive(self) -> None:
        self.dst_node.deliver(self._in_flight.popleft())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Link {self.name or id(self)} delay={self.delay * 1e6:.1f}us>"
