"""Unidirectional links with propagation delay and a rate/capacity identity.

Serialization delay is modelled by the *sender* (a host NIC or a switch egress
port), so a link only adds propagation delay and hands the packet to the
receiving node's ``deliver`` method.  A link nevertheless *owns* its rate:
:class:`LinkSpec` couples the rate, the propagation delay and an optional
degradation factor, and the wiring layer (:class:`repro.netsim.network.Network`)
propagates the link's effective rate back into the sender's serializer (the
egress port or the host NIC) so asymmetric fabrics serialize each packet at
the rate of the wire it is about to cross, not at one fabric-wide rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Deque, Optional, Protocol

from collections import deque

from repro.sim.engine import Simulator
from repro.switchsim.packet import Packet


@dataclass(frozen=True)
class LinkSpec:
    """The declarative identity of one (direction of a) link.

    Attributes:
        rate_bps: nominal capacity of the link in bits per second.  ``None``
            means "inherit the sender's rate" (the legacy single-rate model);
            when set, the sender serializes at :attr:`effective_rate_bps`.
        delay: one-way propagation delay in seconds.
        degraded_factor: multiplicative capacity degradation in ``(0, 1]``;
            ``1.0`` is a healthy link, ``0.5`` a half-rate one.  Degradation
            scales both the serialization rate and the link's ECMP weight.
    """

    rate_bps: Optional[float] = None
    delay: float = 0.0
    degraded_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_bps is not None and not self.rate_bps > 0:
            raise ValueError(
                f"link rate must be positive, got {self.rate_bps!r}")
        if self.delay < 0:
            raise ValueError(
                f"propagation delay cannot be negative, got {self.delay!r}")
        if not 0 < self.degraded_factor <= 1:
            raise ValueError(
                "degraded_factor must be in (0, 1], got "
                f"{self.degraded_factor!r}")

    @property
    def effective_rate_bps(self) -> Optional[float]:
        """The degradation-adjusted capacity (``None`` when rate is unset)."""
        if self.rate_bps is None:
            return None
        return self.rate_bps * self.degraded_factor

    def degraded(self, factor: float) -> "LinkSpec":
        """A copy with ``factor`` folded into the degradation."""
        return LinkSpec(rate_bps=self.rate_bps, delay=self.delay,
                        degraded_factor=self.degraded_factor * factor)


class Deliverable(Protocol):
    """Anything that can receive packets from a link (hosts, switch nodes)."""

    def deliver(self, packet: Packet) -> None: ...


class Link:
    """A unidirectional link towards ``dst_node`` with fixed propagation delay.

    A link may carry a rate identity (``rate_bps`` / ``degraded_factor``, see
    :class:`LinkSpec`); the wiring layer uses it to retune the sender-side
    serializer and the ECMP weight of the port feeding this link.  A *failed*
    link (``failed=True``) is excluded from routing by the fabric layer; any
    packet that still reaches it (a misconfiguration) is blackholed and
    counted in ``dropped_packets``.
    """

    def __init__(self, sim: Simulator, dst_node: Deliverable, delay: float,
                 name: str = "", rate_bps: Optional[float] = None,
                 degraded_factor: float = 1.0) -> None:
        # One authoritative rule set for link parameters: LinkSpec's
        # __post_init__ validates rate/delay/degradation.
        LinkSpec(rate_bps=rate_bps, delay=delay,
                 degraded_factor=degraded_factor)
        self.sim = sim
        self.dst_node = dst_node
        self.delay = delay
        self.name = name
        self.rate_bps = rate_bps
        self.degraded_factor = degraded_factor
        self.failed = False
        self.packets_carried = 0
        self.bytes_carried = 0
        #: Packets blackholed because they hit a failed link (should stay 0:
        #: the routing layer excludes failed links from every candidate set).
        self.dropped_packets = 0
        #: Packets currently propagating, in arrival order.  The propagation
        #: delay is constant, so departures arrive FIFO and one prebuilt
        #: bound method can deliver them without per-packet closures (events
        #: scheduled at equal timestamps also fire in scheduling order, so
        #: the pop order always matches the event order).
        self._in_flight: Deque[Packet] = deque()
        #: Delivery batches: packets entering the link at the same instant
        #: arrive at the same instant, so only the first of a same-timestamp
        #: run schedules an ``_arrive`` event; the rest ride it.  One heap
        #: push/pop per *distinct* arrival time instead of one per packet:
        #: ``_batch_counts[i]`` is the packet count of the i-th pending
        #: event, ``_tail_time`` the arrival time of the newest batch.
        #: Arrival times grow monotonically (``now + delay``), so a new
        #: batch can never collide with an already-fired timestamp.
        self._batch_counts: Deque[int] = deque()
        self._tail_time = -1.0
        #: Same-timestamp heap band of this link's ``_arrive`` events.  0 by
        #: default (plain FIFO tie-break); the runner assigns every fabric
        #: link a distinct positive priority from the sorted link list
        #: (``Network.assign_event_priorities``) so that same-instant
        #: arrivals on different wires execute in a *content-determined*
        #: order -- the property the sharded engine needs to replay
        #: cross-shard arrivals byte-identically to the one-process oracle.
        self.event_priority = 0

    @classmethod
    def from_spec(cls, sim: Simulator, dst_node: Deliverable, spec: LinkSpec,
                  name: str = "") -> "Link":
        return cls(sim, dst_node, spec.delay, name=name,
                   rate_bps=spec.rate_bps,
                   degraded_factor=spec.degraded_factor)

    @property
    def effective_rate_bps(self) -> Optional[float]:
        """Degradation-adjusted capacity (``None`` = inherit sender's rate)."""
        if self.rate_bps is None:
            return None
        return self.rate_bps * self.degraded_factor

    def transmit(self, packet: Packet) -> None:
        """Start propagating ``packet``; it arrives ``delay`` seconds later."""
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        if self.delay == 0:
            self.dst_node.deliver(packet)
            return
        self._in_flight.append(packet)
        time = self.sim.now + self.delay
        if time == self._tail_time:
            # Same-instant departure on the same wire: ride the event that is
            # already scheduled for this arrival time (delivery order within
            # the link is FIFO either way).
            self._batch_counts[-1] += 1
            return
        self._tail_time = time
        self._batch_counts.append(1)
        # Inlined Simulator.schedule_fast: links schedule one event per
        # distinct arrival instant, the hottest remaining scheduling call.
        queue = self.sim._queue
        heappush(queue._heap,
                 (time, self.event_priority, next(queue._counter),
                  self._arrive))

    def _transmit_failed(self, packet: Packet) -> None:
        """`transmit` of a failed link: blackhole (see :meth:`set_failed`)."""
        self.dropped_packets += 1
        pool = self.sim.kernel.packet_pool
        if pool is not None:
            # Blackholing is the packet's death site (cold path: routing
            # excludes failed links, so this only fires on misconfiguration).
            pool.release(packet)

    def set_failed(self, failed: bool = True) -> None:
        """Mark the link failed (or repaired).

        Packets already in flight still arrive; new ones are blackholed.
        Implemented by swapping the instance's ``transmit`` method so the
        healthy fast path pays no per-packet status check.
        """
        self.failed = failed
        if failed:
            self.transmit = self._transmit_failed  # type: ignore[method-assign]
        else:
            self.__dict__.pop("transmit", None)

    def _arrive(self) -> None:
        count = self._batch_counts.popleft()
        in_flight = self._in_flight
        if count == 1:
            self.dst_node.deliver(in_flight.popleft())
            return
        deliver = self.dst_node.deliver
        for _ in range(count):
            deliver(in_flight.popleft())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        rate = ("inherit" if self.rate_bps is None
                else f"{self.effective_rate_bps / 1e9:.1f}Gbps")
        status = " FAILED" if self.failed else ""
        return (f"<Link {self.name or id(self)} delay={self.delay * 1e6:.1f}us "
                f"rate={rate}{status}>")
