"""Occamy reproduction: preemptive buffer management for on-chip shared-memory switches.

This package reproduces the system described in *Occamy: A Preemptive Buffer
Management for On-chip Shared-memory Switches* (EuroSys 2025) as a pure-Python
library.  It contains:

* :mod:`repro.sim` -- a discrete-event simulation kernel.
* :mod:`repro.switchsim` -- a cell-granularity model of an on-chip
  shared-memory traffic manager (packet buffer, queues, schedulers, memory
  bandwidth).
* :mod:`repro.core` -- buffer management schemes: Dynamic Threshold, static
  thresholds, ABM, Pushout and the paper's contribution, Occamy.
* :mod:`repro.netsim` -- a packet-level network simulator (hosts, links, DCTCP
  and other transports, ECMP) whose switches embed the traffic manager model.
* :mod:`repro.topology`, :mod:`repro.workloads`, :mod:`repro.metrics` --
  topologies, datacenter workloads and measurement helpers.
* :mod:`repro.hw` -- analytical hardware-cost models for the Occamy circuits.
* :mod:`repro.experiments` -- one harness per paper figure/table.
"""

from repro.core import (
    ABM,
    BufferManager,
    CompletePartitioning,
    CompleteSharing,
    DynamicThreshold,
    Occamy,
    Pushout,
    StaticThreshold,
    make_buffer_manager,
)
from repro.switchsim import SharedMemorySwitch, SwitchConfig
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ABM",
    "BufferManager",
    "CompletePartitioning",
    "CompleteSharing",
    "DynamicThreshold",
    "Occamy",
    "Pushout",
    "StaticThreshold",
    "SharedMemorySwitch",
    "Simulator",
    "SwitchConfig",
    "make_buffer_manager",
    "__version__",
]
