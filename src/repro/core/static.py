"""Classic static buffer-sharing policies.

These predate DT and serve both as historical baselines and as useful
degenerate cases in tests:

* :class:`CompleteSharing` -- no per-queue limit at all; a packet is accepted
  whenever the shared buffer has room.  Maximally efficient, maximally unfair.
* :class:`CompletePartitioning` -- the buffer is statically divided equally
  among all queues.  Maximally fair, inefficient.
* :class:`StaticThreshold` -- every queue is capped at a fixed byte limit
  (SMXQ-style).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.base import BufferManager, QueueView


class CompleteSharing(BufferManager):
    """Admit whenever there is free buffer; never restrict individual queues."""

    name = "complete_sharing"

    def threshold(self, queue: QueueView, now: float) -> float:
        return math.inf


class CompletePartitioning(BufferManager):
    """Statically partition the buffer equally across all queues."""

    name = "complete_partitioning"

    def threshold(self, queue: QueueView, now: float) -> float:
        switch = self._require_switch()
        n_queues = max(1, switch.total_queue_count)
        return switch.buffer_size_bytes / n_queues


class StaticThreshold(BufferManager):
    """Cap every queue at a fixed byte threshold (SMXQ).

    Args:
        threshold_bytes: the per-queue cap.  If ``None``, the cap defaults to
            the buffer size divided by the number of ports, computed lazily at
            admission time.
    """

    name = "static_threshold"

    def __init__(self, threshold_bytes: Optional[float] = None) -> None:
        super().__init__()
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_bytes = threshold_bytes

    def threshold(self, queue: QueueView, now: float) -> float:
        if self.threshold_bytes is not None:
            return self.threshold_bytes
        switch = self._require_switch()
        n_ports = max(1, switch.port_count)
        return switch.buffer_size_bytes / n_ports

    def describe(self) -> str:
        return f"static_threshold(bytes={self.threshold_bytes})"
