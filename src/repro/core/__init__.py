"""Buffer management (BM) schemes.

This package contains the paper's primary contribution (:class:`Occamy`) and
every baseline it is evaluated against:

* :class:`DynamicThreshold` -- the de facto BM (DT, Choudhury & Hahne 1998).
* :class:`StaticThreshold`, :class:`CompleteSharing`,
  :class:`CompletePartitioning` -- classic static schemes.
* :class:`ABM` -- Active Buffer Management (Addanki et al., SIGCOMM 2022).
* :class:`Pushout` -- the classic preemptive scheme considered optimal.
* :class:`Occamy` -- DT-style proactive admission with a reactive head-drop
  expulsion engine driven by redundant memory bandwidth.

Schemes are attached to a :class:`repro.switchsim.SharedMemorySwitch`, which
consults them on every packet arrival and informs them of every enqueue,
dequeue and drop.
"""

from repro.core.base import AdmissionDecision, BufferManager, EvictionRequest, QueueView
from repro.core.dt import DynamicThreshold
from repro.core.static import CompletePartitioning, CompleteSharing, StaticThreshold
from repro.core.abm import ABM
from repro.core.pushout import Pushout
from repro.core.occamy import Occamy
from repro.core.expulsion import ExpulsionEngine, HeadDropSelector, TokenBucket
from repro.core.registry import (
    available_schemes,
    make_buffer_manager,
    register_scheme,
    scheme_defaults,
    unregister_scheme,
)

__all__ = [
    "ABM",
    "AdmissionDecision",
    "BufferManager",
    "CompletePartitioning",
    "CompleteSharing",
    "DynamicThreshold",
    "EvictionRequest",
    "ExpulsionEngine",
    "HeadDropSelector",
    "Occamy",
    "Pushout",
    "QueueView",
    "StaticThreshold",
    "TokenBucket",
    "available_schemes",
    "make_buffer_manager",
    "register_scheme",
    "scheme_defaults",
    "unregister_scheme",
]
