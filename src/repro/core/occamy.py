"""Occamy: preemptive buffer management built from two simple components.

Occamy = **proactive admission** + **reactive expulsion** (Section 4):

* The proactive component is plain Dynamic Threshold with a *large* alpha
  (default 8), so only a small fraction of the buffer is reserved for newly
  active queues -- ``B / (1 + 8N)`` instead of ``B / (1 + N)`` -- which raises
  buffer efficiency.
* The reactive component actively expels packets from all queues whose length
  exceeds the admission threshold ``T(t)``, in round-robin order, using only
  redundant memory bandwidth.  The expulsion machinery itself lives in
  :mod:`repro.core.expulsion` and is instantiated by the switch; this class
  only carries its configuration (victim policy, bandwidth share).

Unlike Pushout, admission never waits for an expulsion: if the buffer is full
an arriving packet is simply dropped, and the reserved headroom from the
proactive component makes that rare.
"""

from __future__ import annotations

from repro.core.dt import DynamicThreshold


class Occamy(DynamicThreshold):
    """The Occamy buffer manager.

    Args:
        alpha: DT parameter for the proactive admission component.  The paper
            recommends 8 (Section 4.4/6.3).
        victim_policy: ``"round_robin"`` (the Occamy design) or ``"longest"``
            (the Figure 21 ablation that always drops from the longest
            over-allocated queue).
        expulsion_bandwidth_fraction: fraction of the switch's aggregate
            memory bandwidth used to generate expulsion tokens.  ``1.0`` means
            the token bucket is fed at full switching capacity, so expulsions
            can only use whatever forwarding leaves over -- the paper's
            redundant-bandwidth rule.
        max_drops_per_run: cap on head drops performed per engine invocation
            (keeps individual simulation events cheap).
    """

    name = "occamy"
    uses_expulsion_engine = True

    def __init__(
        self,
        alpha: float = 8.0,
        victim_policy: str = "round_robin",
        expulsion_bandwidth_fraction: float = 1.0,
        max_drops_per_run: int = 64,
    ) -> None:
        super().__init__(alpha=alpha)
        if victim_policy not in ("round_robin", "longest"):
            raise ValueError(f"unknown victim policy: {victim_policy!r}")
        if not 0 < expulsion_bandwidth_fraction <= 1.0:
            raise ValueError("expulsion_bandwidth_fraction must be in (0, 1]")
        if max_drops_per_run <= 0:
            raise ValueError("max_drops_per_run must be positive")
        self.victim_policy = victim_policy
        self.expulsion_bandwidth_fraction = expulsion_bandwidth_fraction
        self.max_drops_per_run = max_drops_per_run

    # ------------------------------------------------------------------
    # Analytical helpers (Section 4.4)
    # ------------------------------------------------------------------
    def max_fair_arrival_ratio(self, n_over_allocated: int, n_bursting: int) -> float:
        """Maximum ``R/V`` ratio for which buffer sharing stays fair (Eq. 3).

        ``R`` is the aggregate burst arrival rate, ``V`` the expulsion rate,
        ``n_over_allocated`` the number of over-allocated queues and
        ``n_bursting`` the number of queues receiving bursts.
        """
        if n_bursting <= 0:
            raise ValueError("need at least one bursting queue")
        if n_over_allocated < 0:
            raise ValueError("number of over-allocated queues cannot be negative")
        return 1.0 + (1.0 + self.alpha * n_over_allocated) / (self.alpha * n_bursting)

    def min_alpha_inverse(self, arrival_rate: float, expulsion_rate: float,
                          n_bursting: int, n_over_allocated: int) -> float:
        """Lower bound on ``1/alpha`` required for fairness (Eq. 4).

        A non-positive return value means any alpha preserves fairness.
        """
        if expulsion_rate <= 0:
            raise ValueError("expulsion rate must be positive")
        if n_bursting <= 0:
            raise ValueError("need at least one bursting queue")
        return (arrival_rate / expulsion_rate - 1.0) * n_bursting - n_over_allocated

    def describe(self) -> str:
        return (
            f"occamy(alpha={self.alpha}, victim={self.victim_policy}, "
            f"bw_fraction={self.expulsion_bandwidth_fraction})"
        )


class OccamyLongestDrop(Occamy):
    """Figure 21 ablation: Occamy that always expels from the longest queue."""

    name = "occamy_longest"

    def __init__(self, alpha: float = 8.0, **kwargs) -> None:
        kwargs.setdefault("victim_policy", "longest")
        super().__init__(alpha=alpha, **kwargs)
