"""Base classes and protocols shared by all buffer management schemes."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.switchsim.switch import SharedMemorySwitch


@runtime_checkable
class QueueView(Protocol):
    """The queue state a buffer manager is allowed to observe.

    The on-chip admission logic only sees queue-length statistics (Figure 1 of
    the paper); this protocol captures exactly that, plus the static queue
    attributes (port, priority, per-queue alpha override) that commodity chips
    expose through configuration.
    """

    @property
    def queue_id(self) -> int: ...

    @property
    def port_id(self) -> int: ...

    @property
    def length_bytes(self) -> int: ...

    @property
    def length_packets(self) -> int: ...

    @property
    def priority(self) -> int: ...

    @property
    def alpha_override(self) -> Optional[float]: ...

    @property
    def drain_rate_estimate(self) -> float: ...


@dataclass
class EvictionRequest:
    """A request to evict bytes from a victim queue to make room.

    Attributes:
        queue_id: queue to evict from.
        from_head: if True, expel at the head (head drop); otherwise at the
            tail (classic pushout discards the newest resident packet).
        max_bytes: stop evicting once this many bytes have been freed.
    """

    queue_id: int
    from_head: bool = False
    max_bytes: int = 0


@dataclass
class AdmissionDecision:
    """The outcome of consulting a buffer manager about an arriving packet.

    Attributes:
        accept: whether the packet may be enqueued.
        evictions: evictions that must be carried out *before* the enqueue
            (only preemptive schemes such as Pushout populate this).
        reason: a short machine-readable reason for drops, used by statistics.
    """

    accept: bool
    evictions: List[EvictionRequest] = field(default_factory=list)
    reason: str = ""


#: Shared plain-accept decision used on the hot admission path.  Callers must
#: treat decisions as immutable (schemes that request evictions build their
#: own instances).
ACCEPT = AdmissionDecision(True)


class BufferManager:
    """Abstract base class for buffer management schemes.

    Subclasses implement :meth:`threshold` and may override :meth:`admit` for
    non-threshold behaviour (e.g. Pushout).  The switch calls the ``on_*``
    hooks so that schemes needing history (e.g. ABM's drain-rate term) can
    maintain it.

    The scheme is attached to a switch with :meth:`attach`; afterwards
    ``self.switch`` exposes the buffer size, occupancy and queue views.
    """

    #: Human-readable scheme name (used by the registry and experiment output).
    name: str = "base"

    #: Whether the scheme may evict already-accepted packets on admission
    #: (Pushout-style preemption coupled to the enqueue path).
    preemptive_admission: bool = False

    #: Whether the scheme drives the switch's expulsion engine (Occamy-style
    #: decoupled preemption on the egress side).
    uses_expulsion_engine: bool = False

    def __init__(self) -> None:
        self.switch: Optional["SharedMemorySwitch"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, switch: "SharedMemorySwitch") -> None:
        """Bind the scheme to a switch.  Called once by the switch."""
        self.switch = switch

    def detach(self) -> None:
        """Unbind from the switch (mainly useful in tests)."""
        self.switch = None

    # ------------------------------------------------------------------
    # Core policy
    # ------------------------------------------------------------------
    def threshold(self, queue: QueueView, now: float) -> float:
        """Return the maximum queue length (bytes) allowed for ``queue``.

        ``math.inf`` means the queue is unrestricted (complete sharing).
        """
        raise NotImplementedError

    def admit(self, queue: QueueView, packet_bytes: int, now: float) -> AdmissionDecision:
        """Decide whether an arriving ``packet_bytes``-byte packet is accepted.

        The default implementation admits iff both (a) the packet fits in the
        free buffer and (b) the queue would not exceed :meth:`threshold`.
        """
        switch = self._require_switch()
        if packet_bytes > switch.free_buffer_bytes:
            return AdmissionDecision(False, reason="buffer_full")
        limit = self.threshold(queue, now)
        if queue.length_bytes + packet_bytes > limit:
            return AdmissionDecision(False, reason="over_threshold")
        return ACCEPT

    def over_allocated(self, queue: QueueView, now: float) -> bool:
        """Whether ``queue`` currently holds more than its fair threshold.

        Used by the Occamy expulsion engine to build its bitmap; other schemes
        inherit the same definition for instrumentation purposes.
        """
        return queue.length_bytes > self.threshold(queue, now)

    def over_allocated_flags(self, queues: Sequence[QueueView],
                             now: float) -> List[bool]:
        """Per-queue over-allocation flags, in queue order.

        The expulsion engine rebuilds this bitmap on every invocation;
        schemes whose threshold shares work across queues (DT's free-buffer
        term) override it to hoist that work out of the per-queue loop.
        """
        return [queue.length_bytes > self.threshold(queue, now)
                for queue in queues]

    # ------------------------------------------------------------------
    # Bookkeeping hooks (no-ops by default)
    # ------------------------------------------------------------------
    def on_enqueue(self, queue: QueueView, packet_bytes: int, now: float) -> None:
        """Called after a packet has been enqueued."""

    def on_dequeue(self, queue: QueueView, packet_bytes: int, now: float) -> None:
        """Called after a packet has been dequeued for transmission."""

    def on_drop(self, queue: QueueView, packet_bytes: int, now: float, reason: str) -> None:
        """Called after a packet has been dropped (admission or expulsion)."""

    def on_port_rate_changed(self, port_id: int, rate_bps: float) -> None:
        """Called when an egress port's line rate is retuned after attach.

        The fabric layer retunes ports when a link with its own rate (or a
        degradation factor) is wired to them; schemes that cache port rates
        at attach time (ABM) refresh their cache here.
        """

    def reset(self) -> None:
        """Clear any internal state (called when the switch resets)."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_switch(self) -> "SharedMemorySwitch":
        if self.switch is None:
            raise RuntimeError(
                f"buffer manager {self.name!r} is not attached to a switch"
            )
        return self.switch

    def effective_alpha(self, queue: QueueView, default_alpha: float) -> float:
        """Per-queue alpha override falling back to the scheme default."""
        override = queue.alpha_override
        return default_alpha if override is None else override

    def describe(self) -> str:
        """One-line human-readable description used in experiment output."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.describe()}>"


def clamp_threshold(value: float) -> float:
    """Clamp a computed threshold into ``[0, inf)`` (free buffer can be 0)."""
    if value < 0:
        return 0.0
    if math.isnan(value):
        return 0.0
    return value
