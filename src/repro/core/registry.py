"""A small registry mapping scheme names to buffer-manager factories.

Experiments and the CLI refer to schemes by name (``"dt"``, ``"occamy"``,
``"abm"``, ``"pushout"``, ...); the registry turns those names plus keyword
arguments into configured :class:`~repro.core.base.BufferManager` instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.abm import ABM
from repro.core.base import BufferManager
from repro.core.dt import DynamicThreshold
from repro.core.occamy import Occamy, OccamyLongestDrop
from repro.core.pushout import Pushout
from repro.core.static import CompletePartitioning, CompleteSharing, StaticThreshold

_FACTORIES: Dict[str, Callable[..., BufferManager]] = {}


def register_scheme(name: str, factory: Callable[..., BufferManager]) -> None:
    """Register a new scheme factory under ``name`` (overwrites existing)."""
    if not name:
        raise ValueError("scheme name must be non-empty")
    _FACTORIES[name] = factory


def available_schemes() -> List[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_FACTORIES)


def make_buffer_manager(name: str, **kwargs) -> BufferManager:
    """Instantiate the scheme registered under ``name`` with ``kwargs``.

    Raises:
        KeyError: if no scheme with that name is registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown buffer management scheme {name!r}; "
            f"available: {', '.join(available_schemes())}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------
# Built-in schemes
# ----------------------------------------------------------------------
register_scheme("dt", DynamicThreshold)
register_scheme("abm", ABM)
register_scheme("pushout", Pushout)
register_scheme("occamy", Occamy)
register_scheme("occamy_longest", OccamyLongestDrop)
register_scheme("complete_sharing", CompleteSharing)
register_scheme("complete_partitioning", CompletePartitioning)
register_scheme("static_threshold", StaticThreshold)
