"""A registry mapping scheme names to buffer-manager factories.

Experiments, scenarios and the CLI refer to schemes by name (``"dt"``,
``"occamy"``, ``"abm"``, ``"pushout"``, ...); the registry turns those names
plus keyword arguments into configured
:class:`~repro.core.base.BufferManager` instances.

Every registration may carry *default keyword arguments* -- the paper's
parameter choices live here (DT alpha=1, ABM alpha=2, Occamy alpha=8), so
``make_buffer_manager("occamy")`` is the single source of truth for a
paper-configured scheme.  Call-site kwargs override the registered defaults.

Registering a name twice is an error unless ``override=True`` is passed:
silent overwrites used to let a plugin shadow a built-in scheme without
anyone noticing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.core.abm import ABM
from repro.core.base import BufferManager
from repro.core.dt import DynamicThreshold
from repro.core.occamy import Occamy, OccamyLongestDrop
from repro.core.pushout import Pushout
from repro.core.static import CompletePartitioning, CompleteSharing, StaticThreshold

_FACTORIES: Dict[str, Callable[..., BufferManager]] = {}
_DEFAULTS: Dict[str, Dict[str, object]] = {}


def register_scheme(
    name: str,
    factory: Callable[..., BufferManager],
    defaults: Optional[Mapping[str, object]] = None,
    override: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    Args:
        name: scheme name (non-empty).
        factory: callable (usually the scheme class) accepting the scheme's
            keyword arguments.
        defaults: default keyword arguments applied by
            :func:`make_buffer_manager`; call-site kwargs take precedence.
        override: allow replacing an existing registration.  Without it a
            name collision raises :class:`ValueError`.
    """
    if not name:
        raise ValueError("scheme name must be non-empty")
    if name in _FACTORIES and not override:
        raise ValueError(
            f"scheme {name!r} is already registered; "
            "pass override=True to replace it"
        )
    _FACTORIES[name] = factory
    _DEFAULTS[name] = dict(defaults or {})


def unregister_scheme(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    _FACTORIES.pop(name, None)
    _DEFAULTS.pop(name, None)


def available_schemes() -> List[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_FACTORIES)


def scheme_defaults(name: str) -> Dict[str, object]:
    """The registered default kwargs of scheme ``name`` (a copy)."""
    if name not in _DEFAULTS:
        raise KeyError(
            f"unknown buffer management scheme {name!r}; "
            f"available: {', '.join(available_schemes())}"
        )
    return dict(_DEFAULTS[name])


def make_buffer_manager(name: str, **kwargs) -> BufferManager:
    """Instantiate the scheme registered under ``name``.

    The registered default kwargs are applied first; explicit ``kwargs``
    override them.

    Raises:
        KeyError: if no scheme with that name is registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown buffer management scheme {name!r}; "
            f"available: {', '.join(available_schemes())}"
        ) from None
    merged = {**_DEFAULTS[name], **kwargs}
    return factory(**merged)


# ----------------------------------------------------------------------
# Built-in schemes (defaults are the paper's parameter choices, Section 6.2)
# ----------------------------------------------------------------------
register_scheme("dt", DynamicThreshold, defaults={"alpha": 1.0})
register_scheme("abm", ABM, defaults={"alpha": 2.0})
register_scheme("pushout", Pushout)
register_scheme("occamy", Occamy, defaults={"alpha": 8.0})
register_scheme("occamy_longest", OccamyLongestDrop, defaults={"alpha": 8.0})
register_scheme("complete_sharing", CompleteSharing)
register_scheme("complete_partitioning", CompletePartitioning)
register_scheme("static_threshold", StaticThreshold)
