"""Occamy's reactive component: the packet-expulsion engine.

The engine mirrors the egress-side datapath of Figure 8/9 in the paper:

* a **head-drop selector** keeps a bitmap with one bit per queue, set when the
  queue's length exceeds the admission threshold ``T(t)``, and iterates over
  the set bits with a round-robin arbiter;
* a **fixed-priority arbiter** makes head drops yield to the output scheduler
  -- modelled here through a :class:`TokenBucket` that only grants expulsions
  out of *redundant* memory bandwidth (the same token-bucket construction as
  the paper's DPDK prototype, Section 5.3);
* a **head-drop executor** dequeues the victim packet's descriptor and returns
  its cell pointers to the free list without touching cell data memory.

The engine is policy-agnostic: it asks the attached buffer manager which
queues are over-allocated, so it can serve both round-robin Occamy and the
longest-queue-drop variant evaluated in Figure 21.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import BufferManager
    from repro.switchsim.switch import SharedMemorySwitch


class TokenBucket:
    """A continuous-time token bucket measured in buffer cells.

    Tokens are generated at ``rate_cells_per_sec`` and capped at
    ``capacity_cells``.  The forwarding (TX) path is always allowed to consume
    tokens, even driving the balance negative, because line-rate forwarding
    must never be blocked; the expulsion path may only consume tokens that are
    actually available.  This reproduces the prototype's accounting of
    *redundant* memory bandwidth.
    """

    def __init__(self, rate_cells_per_sec: float, capacity_cells: float) -> None:
        if rate_cells_per_sec <= 0:
            raise ValueError("token rate must be positive")
        if capacity_cells <= 0:
            raise ValueError("capacity must be positive")
        self.rate = rate_cells_per_sec
        self.capacity = capacity_cells
        self._tokens = capacity_cells
        self._last_update = 0.0
        #: Cumulative cells consumed by forwarding vs. expulsion (statistics).
        self.forward_cells_consumed = 0.0
        self.expel_cells_consumed = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            # Defensive: callers must use a monotonic clock, but a tiny
            # floating-point regression should not corrupt the balance.
            now = self._last_update
        elapsed = now - self._last_update
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last_update = now

    def available(self, now: float) -> float:
        """Tokens (cells) available at time ``now``."""
        self._refill(now)
        return self._tokens

    def consume_forwarding(self, cells: float, now: float) -> None:
        """Consume tokens for normal forwarding; may drive the balance negative."""
        if cells < 0:
            raise ValueError("cells must be non-negative")
        self._refill(now)
        self._tokens -= cells
        self.forward_cells_consumed += cells

    def try_consume_expulsion(self, cells: float, now: float) -> bool:
        """Consume tokens for an expulsion iff enough are available.

        A small epsilon absorbs floating-point residue so that a balance of
        7.999999999 cells still covers an 8-cell packet.
        """
        if cells < 0:
            raise ValueError("cells must be non-negative")
        self._refill(now)
        if self._tokens + 1e-9 < cells:
            return False
        self._tokens -= cells
        self.expel_cells_consumed += cells
        return True

    def time_until(self, cells: float, now: float) -> float:
        """Seconds until ``cells`` tokens will be available (0 if already)."""
        self._refill(now)
        deficit = cells - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def utilization(self) -> float:
        """Fraction of consumed tokens that went to forwarding (diagnostics)."""
        total = self.forward_cells_consumed + self.expel_cells_consumed
        if total == 0:
            return 0.0
        return self.forward_cells_consumed / total


class RoundRobinPointer:
    """The round-robin arbiter of the head-drop selector (functional model).

    Given a bitmap of eligible queues, return the first eligible index at or
    after the pointer, then advance the pointer past it -- exactly the grant
    behaviour of the combinational round-robin arbiters used in crossbar
    schedulers.
    """

    def __init__(self) -> None:
        self._pointer = 0

    @property
    def pointer(self) -> int:
        return self._pointer

    def grant(self, bitmap: Sequence[bool]) -> Optional[int]:
        """Pick the next set bit in round-robin order, or None if none set."""
        n = len(bitmap)
        if n == 0:
            return None
        start = self._pointer % n
        for offset in range(n):
            idx = (start + offset) % n
            if bitmap[idx]:
                self._pointer = (idx + 1) % n
                return idx
        return None

    def reset(self) -> None:
        self._pointer = 0


@dataclass
class HeadDropSelector:
    """Bitmap of over-allocated queues plus a round-robin arbiter (Figure 9)."""

    num_queues: int
    arbiter: RoundRobinPointer = field(default_factory=RoundRobinPointer)

    def __post_init__(self) -> None:
        if self.num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.bitmap: List[bool] = [False] * self.num_queues

    def update(self, over_allocated_flags: Iterable[bool]) -> None:
        """Refresh the bitmap from per-queue comparator outputs."""
        flags = list(over_allocated_flags)
        if len(flags) != self.num_queues:
            raise ValueError(
                f"expected {self.num_queues} flags, got {len(flags)}"
            )
        self.bitmap = flags

    def any_over_allocated(self) -> bool:
        return any(self.bitmap)

    def select(self) -> Optional[int]:
        """Return the index of the next over-allocated queue, round-robin."""
        return self.arbiter.grant(self.bitmap)

    def select_longest(self, lengths: Sequence[int]) -> Optional[int]:
        """Return the longest over-allocated queue (Figure 21 variant)."""
        best_idx: Optional[int] = None
        best_len = -1
        for idx, flag in enumerate(self.bitmap):
            if flag and lengths[idx] > best_len:
                best_idx = idx
                best_len = lengths[idx]
        return best_idx


@dataclass
class ExpulsionResult:
    """Outcome of one :meth:`ExpulsionEngine.run` invocation."""

    expelled_packets: int = 0
    expelled_bytes: int = 0
    blocked_on_tokens: bool = False
    #: Seconds until enough tokens for the next pending expulsion (0 if not blocked).
    retry_after: float = 0.0


class ExpulsionEngine:
    """Drives head drops for over-allocated queues using redundant bandwidth.

    The engine is owned by a :class:`~repro.switchsim.switch.SharedMemorySwitch`
    and invoked opportunistically after enqueues and dequeues.  Each invocation
    expels as many packets as the token bucket allows (bounded by
    ``max_drops_per_run`` to keep single events cheap), then reports whether it
    is blocked waiting for memory bandwidth so the switch can schedule a retry.
    """

    def __init__(
        self,
        switch: "SharedMemorySwitch",
        manager: "BufferManager",
        token_bucket: TokenBucket,
        victim_policy: str = "round_robin",
        max_drops_per_run: int = 64,
    ) -> None:
        if victim_policy not in ("round_robin", "longest"):
            raise ValueError(f"unknown victim policy: {victim_policy!r}")
        self.switch = switch
        self.manager = manager
        self.token_bucket = token_bucket
        self.victim_policy = victim_policy
        self.max_drops_per_run = max_drops_per_run
        self.selector = HeadDropSelector(num_queues=switch.total_queue_count)
        #: Cumulative statistics.
        self.total_expelled_packets = 0
        self.total_expelled_bytes = 0

    def run(self, now: float) -> ExpulsionResult:
        """Expel head packets from over-allocated queues while bandwidth allows."""
        result = ExpulsionResult()
        for _ in range(self.max_drops_per_run):
            views = self.switch.queue_views()
            flags = self.manager.over_allocated_flags(views, now)
            self.selector.update(flags)
            if not self.selector.any_over_allocated():
                break
            if self.victim_policy == "longest":
                lengths = [view.length_bytes for view in views]
                victim_index = self.selector.select_longest(lengths)
            else:
                victim_index = self.selector.select()
            if victim_index is None:
                break
            victim = views[victim_index]
            head_bytes = self.switch.head_packet_bytes(victim.queue_id)
            if head_bytes is None:
                # Queue emptied between the comparator snapshot and now.
                continue
            cells = self.switch.cells_for_bytes(head_bytes)
            if not self.token_bucket.try_consume_expulsion(cells, now):
                result.blocked_on_tokens = True
                # Never retry more often than one cell-time: retrying on
                # sub-cell token deficits would flood the event queue.
                result.retry_after = max(
                    self.token_bucket.time_until(cells, now),
                    1.0 / self.token_bucket.rate,
                )
                break
            dropped = self.switch.head_drop(victim.queue_id, now)
            if dropped is None:
                continue
            result.expelled_packets += 1
            result.expelled_bytes += dropped
            self.total_expelled_packets += 1
            self.total_expelled_bytes += dropped
        return result
