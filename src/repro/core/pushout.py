"""Pushout: the classic preemptive buffer manager (considered optimal).

Pushout admits an arriving packet whenever free buffer exists.  When the
buffer is full, it expels packets from the *longest* queue to make room
(Wei et al. 1991; Choudhury & Hahne 1996).  If the arriving packet's own queue
is the longest, the arrival itself is dropped instead -- evicting from your own
queue to admit yourself would be pointless.

Pushout couples expulsion with the enqueue path (the paper's "Difficulty 2"),
which is exactly what this implementation models: the admission decision can
carry :class:`~repro.core.base.EvictionRequest` items that the switch must
execute before enqueuing the new packet.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.base import AdmissionDecision, BufferManager, EvictionRequest, QueueView


class Pushout(BufferManager):
    """Longest-queue pushout with optional head/tail eviction.

    Args:
        evict_from_head: if True, evictions remove the oldest packet of the
            victim queue (drop-from-front, which is better for TCP timeouts);
            otherwise the newest resident packet is pushed out, matching the
            classic formulation.
    """

    name = "pushout"
    preemptive_admission = True

    def __init__(self, evict_from_head: bool = True) -> None:
        super().__init__()
        self.evict_from_head = evict_from_head

    def threshold(self, queue: QueueView, now: float) -> float:
        # Pushout imposes no per-queue threshold; admission is governed purely
        # by global occupancy plus eviction.
        return math.inf

    def admit(self, queue: QueueView, packet_bytes: int, now: float) -> AdmissionDecision:
        switch = self._require_switch()
        free = switch.free_buffer_bytes
        if packet_bytes <= free:
            return AdmissionDecision(True)
        if packet_bytes > switch.buffer_size_bytes:
            return AdmissionDecision(False, reason="packet_larger_than_buffer")

        needed = packet_bytes - free
        evictions: List[EvictionRequest] = []
        # Repeatedly pick the longest queue until enough bytes would be freed.
        # The switch executes these in order; queue lengths observed here are a
        # snapshot, so we conservatively plan against the snapshot.
        planned: dict[int, int] = {}
        while needed > 0:
            victim = self._longest_queue(exclude_planned=planned)
            if victim is None:
                return AdmissionDecision(False, reason="no_victim")
            if victim.queue_id == queue.queue_id:
                # The arriving packet's queue is (one of) the longest: drop the
                # arrival rather than churn our own queue.
                return AdmissionDecision(False, reason="self_longest")
            available = victim.length_bytes - planned.get(victim.queue_id, 0)
            take = min(available, needed)
            if take <= 0:
                return AdmissionDecision(False, reason="no_victim")
            planned[victim.queue_id] = planned.get(victim.queue_id, 0) + take
            evictions.append(
                EvictionRequest(
                    queue_id=victim.queue_id,
                    from_head=self.evict_from_head,
                    max_bytes=take,
                )
            )
            needed -= take
        return AdmissionDecision(True, evictions=evictions)

    def _longest_queue(self, exclude_planned: dict[int, int]) -> Optional[QueueView]:
        """Return the queue with the most remaining (un-planned) bytes."""
        switch = self._require_switch()
        best: Optional[QueueView] = None
        best_len = 0
        for q in switch.queue_views():
            remaining = q.length_bytes - exclude_planned.get(q.queue_id, 0)
            if remaining > best_len:
                best = q
                best_len = remaining
        return best

    def describe(self) -> str:
        where = "head" if self.evict_from_head else "tail"
        return f"pushout(evict_from={where})"
