"""Dynamic Threshold (DT) -- the de facto non-preemptive buffer manager.

DT (Choudhury & Hahne, ToN 1998) limits every queue to a threshold that is
proportional to the *free* buffer::

    T(t) = alpha * (B - sum_i q_i(t))

A larger ``alpha`` lets a queue absorb more of the buffer (higher efficiency)
but reserves less headroom for newly active queues (lower agility/fairness).
In the steady state with ``N`` congested queues the reserved free buffer is
``B / (1 + alpha * N)`` (Eq. 2 of the paper).
"""

from __future__ import annotations

from repro.core.base import ACCEPT, AdmissionDecision, BufferManager, QueueView


class DynamicThreshold(BufferManager):
    """The Dynamic Threshold scheme with a per-queue overridable ``alpha``."""

    name = "dt"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def threshold(self, queue: QueueView, now: float) -> float:
        # Hot path: effective_alpha/clamp_threshold inlined.  The constructor
        # guarantees alpha > 0, but a per-queue alpha_override may be
        # non-positive, so the product still clamps at zero.
        switch = self.switch
        if switch is None:
            self._require_switch()
        override = queue.alpha_override
        alpha = self.alpha if override is None else override
        value = alpha * switch.free_buffer_bytes
        return value if value > 0.0 else 0.0

    def admit(self, queue: QueueView, packet_bytes: int, now: float) -> AdmissionDecision:
        # Same decision as the base implementation, but the free buffer is
        # read once and shared between the fit check and the threshold.
        switch = self.switch
        if switch is None:
            self._require_switch()
        free = switch.cell_pool.free_bytes
        if packet_bytes > free:
            return AdmissionDecision(False, reason="buffer_full")
        override = queue.alpha_override
        alpha = self.alpha if override is None else override
        limit = alpha * free
        if limit < 0.0:
            limit = 0.0
        if queue.length_bytes + packet_bytes > limit:
            return AdmissionDecision(False, reason="over_threshold")
        return ACCEPT

    def over_allocated(self, queue: QueueView, now: float) -> bool:
        # length_bytes >= 0, so comparing against the unclamped product is
        # equivalent to comparing against the clamped threshold only when the
        # product is non-negative; clamp explicitly for negative overrides.
        switch = self.switch
        if switch is None:
            self._require_switch()
        override = queue.alpha_override
        alpha = self.alpha if override is None else override
        limit = alpha * switch.cell_pool.free_bytes
        return queue.length_bytes > (limit if limit > 0.0 else 0.0)

    def over_allocated_flags(self, queues, now: float):
        # The free-buffer term is shared by every queue; read it once.
        switch = self.switch
        if switch is None:
            self._require_switch()
        free = switch.cell_pool.free_bytes
        default_alpha = self.alpha
        flags = []
        for queue in queues:
            override = queue.alpha_override
            alpha = default_alpha if override is None else override
            limit = alpha * free
            flags.append(queue.length_bytes > (limit if limit > 0.0 else 0.0))
        return flags

    # ------------------------------------------------------------------
    # Analytical helpers (used by experiments and tests)
    # ------------------------------------------------------------------
    def steady_state_free_buffer(self, n_congested: int, buffer_bytes: float) -> float:
        """Reserved free buffer with ``n_congested`` saturated queues (Eq. 2)."""
        if n_congested < 0:
            raise ValueError("number of congested queues cannot be negative")
        return buffer_bytes / (1.0 + self.alpha * n_congested)

    def steady_state_queue_length(self, n_congested: int, buffer_bytes: float) -> float:
        """Per-queue steady-state occupancy with ``n_congested`` saturated queues."""
        if n_congested <= 0:
            raise ValueError("need at least one congested queue")
        free = self.steady_state_free_buffer(n_congested, buffer_bytes)
        return self.alpha * free

    def describe(self) -> str:
        return f"dt(alpha={self.alpha})"
