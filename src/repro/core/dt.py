"""Dynamic Threshold (DT) -- the de facto non-preemptive buffer manager.

DT (Choudhury & Hahne, ToN 1998) limits every queue to a threshold that is
proportional to the *free* buffer::

    T(t) = alpha * (B - sum_i q_i(t))

A larger ``alpha`` lets a queue absorb more of the buffer (higher efficiency)
but reserves less headroom for newly active queues (lower agility/fairness).
In the steady state with ``N`` congested queues the reserved free buffer is
``B / (1 + alpha * N)`` (Eq. 2 of the paper).
"""

from __future__ import annotations

from repro.core.base import BufferManager, QueueView, clamp_threshold


class DynamicThreshold(BufferManager):
    """The Dynamic Threshold scheme with a per-queue overridable ``alpha``."""

    name = "dt"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def threshold(self, queue: QueueView, now: float) -> float:
        switch = self._require_switch()
        alpha = self.effective_alpha(queue, self.alpha)
        return clamp_threshold(alpha * switch.free_buffer_bytes)

    # ------------------------------------------------------------------
    # Analytical helpers (used by experiments and tests)
    # ------------------------------------------------------------------
    def steady_state_free_buffer(self, n_congested: int, buffer_bytes: float) -> float:
        """Reserved free buffer with ``n_congested`` saturated queues (Eq. 2)."""
        if n_congested < 0:
            raise ValueError("number of congested queues cannot be negative")
        return buffer_bytes / (1.0 + self.alpha * n_congested)

    def steady_state_queue_length(self, n_congested: int, buffer_bytes: float) -> float:
        """Per-queue steady-state occupancy with ``n_congested`` saturated queues."""
        if n_congested <= 0:
            raise ValueError("need at least one congested queue")
        free = self.steady_state_free_buffer(n_congested, buffer_bytes)
        return self.alpha * free

    def describe(self) -> str:
        return f"dt(alpha={self.alpha})"
