"""ABM: Active Buffer Management (Addanki et al., SIGCOMM 2022), simplified.

ABM keeps DT's proportionality to the free buffer but additionally divides the
allowance by the number of *active* queues of the same priority and scales it
by the queue's normalized drain rate::

    T_i(t) = alpha_p / n_active(p) * (B - sum_j q_j(t)) * (mu_i / C)

where ``mu_i`` is queue *i*'s recent dequeue (drain) rate and ``C`` the port
capacity.  Dividing by the number of active queues bounds the total buffer
occupancy independently of the workload, and scaling by the drain rate bounds
how long a queue can take to drain -- which is what gives ABM its performance
isolation properties.

The reproduction uses the drain-rate estimate maintained by the switch (an
exponentially weighted average of bytes dequeued per second, normalized by the
port rate).  Queues that have never dequeued anything (newly active queues)
are given a normalized drain rate of 1 so they are not starved before their
first transmission, matching the "unscheduled packet" handling in the ABM
paper's artifact.
"""

from __future__ import annotations

from repro.core.base import BufferManager, QueueView, clamp_threshold


class ABM(BufferManager):
    """Active Buffer Management with per-priority active-queue counting."""

    name = "abm"

    def __init__(self, alpha: float = 2.0, min_drain_fraction: float = 0.05) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < min_drain_fraction <= 1:
            raise ValueError("min_drain_fraction must be in (0, 1]")
        self.alpha = alpha
        #: Lower bound on the normalized drain rate so that very slowly
        #: draining queues still receive a nonzero allowance.
        self.min_drain_fraction = min_drain_fraction

    def threshold(self, queue: QueueView, now: float) -> float:
        switch = self._require_switch()
        alpha = self.effective_alpha(queue, self.alpha)
        n_active = max(1, switch.active_queue_count(priority=queue.priority))
        drain = self._normalized_drain(queue)
        return clamp_threshold(alpha / n_active * switch.free_buffer_bytes * drain)

    def _normalized_drain(self, queue: QueueView) -> float:
        """Normalized drain rate in (0, 1]; inactive/new queues get 1.0."""
        switch = self._require_switch()
        port_rate_bytes = switch.port_rate_bytes_per_sec(queue.port_id)
        if port_rate_bytes <= 0:
            return 1.0
        estimate = queue.drain_rate_estimate
        if estimate <= 0:
            # A queue that has not dequeued anything yet (e.g. a newly active
            # queue hit by a burst) is treated as draining at full rate so it
            # is not starved before its first transmission.
            return 1.0
        fraction = estimate / port_rate_bytes
        return min(1.0, max(self.min_drain_fraction, fraction))

    def describe(self) -> str:
        return f"abm(alpha={self.alpha})"
