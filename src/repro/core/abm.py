"""ABM: Active Buffer Management (Addanki et al., SIGCOMM 2022), simplified.

ABM keeps DT's proportionality to the free buffer but additionally divides the
allowance by the number of *active* queues of the same priority and scales it
by the queue's normalized drain rate::

    T_i(t) = alpha_p / n_active(p) * (B - sum_j q_j(t)) * (mu_i / C)

where ``mu_i`` is queue *i*'s recent dequeue (drain) rate and ``C`` the port
capacity.  Dividing by the number of active queues bounds the total buffer
occupancy independently of the workload, and scaling by the drain rate bounds
how long a queue can take to drain -- which is what gives ABM its performance
isolation properties.

The reproduction uses the drain-rate estimate maintained by the switch (an
exponentially weighted average of bytes dequeued per second, normalized by the
port rate).  Queues that have never dequeued anything (newly active queues)
are given a normalized drain rate of 1 so they are not starved before their
first transmission, matching the "unscheduled packet" handling in the ABM
paper's artifact.
"""

from __future__ import annotations

from typing import List

from repro.core.base import BufferManager, QueueView


class ABM(BufferManager):
    """Active Buffer Management with per-priority active-queue counting."""

    name = "abm"

    def __init__(self, alpha: float = 2.0, min_drain_fraction: float = 0.05) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < min_drain_fraction <= 1:
            raise ValueError("min_drain_fraction must be in (0, 1]")
        self.alpha = alpha
        #: Lower bound on the normalized drain rate so that very slowly
        #: draining queues still receive a nonzero allowance.
        self.min_drain_fraction = min_drain_fraction
        #: Per-port rate cache (bytes/sec), filled on :meth:`attach`; port
        #: rates are fixed for the life of a switch, so looking them up per
        #: admission decision is invariant work hoisted out of the hot path.
        self._port_rate_bytes: List[float] = []

    def attach(self, switch) -> None:
        super().attach(switch)
        self._port_rate_bytes = [port.rate_bps / 8.0 for port in switch.ports]

    def detach(self) -> None:
        super().detach()
        self._port_rate_bytes = []

    def on_port_rate_changed(self, port_id: int, rate_bps: float) -> None:
        """Keep the attach-time rate cache in sync with per-link retuning."""
        if self._port_rate_bytes:
            self._port_rate_bytes[port_id] = rate_bps / 8.0

    def threshold(self, queue: QueueView, now: float) -> float:
        # Hot path: the active-queue count is O(1) (maintained incrementally
        # by the switch) and the port rate comes from the attach-time cache.
        switch = self.switch
        if switch is None:
            self._require_switch()
        override = queue.alpha_override
        alpha = self.alpha if override is None else override
        n_active = switch.active_queue_count(queue.priority)
        if n_active < 1:
            n_active = 1
        value = (alpha / n_active * switch.free_buffer_bytes
                 * self._normalized_drain(queue))
        return value if value > 0.0 else 0.0

    def _normalized_drain(self, queue: QueueView) -> float:
        """Normalized drain rate in (0, 1]; inactive/new queues get 1.0."""
        port_rate_bytes = (
            self._port_rate_bytes[queue.port_id] if self._port_rate_bytes
            else self._require_switch().port_rate_bytes_per_sec(queue.port_id)
        )
        if port_rate_bytes <= 0:
            return 1.0
        estimate = queue.drain_rate_estimate
        if estimate <= 0:
            # A queue that has not dequeued anything yet (e.g. a newly active
            # queue hit by a burst) is treated as draining at full rate so it
            # is not starved before its first transmission.
            return 1.0
        fraction = estimate / port_rate_bytes
        if fraction < self.min_drain_fraction:
            fraction = self.min_drain_fraction
        return fraction if fraction < 1.0 else 1.0

    def describe(self) -> str:
        return f"abm(alpha={self.alpha})"
