"""Named scenario scales (``bench`` / ``small`` / ``paper``).

The ``paper`` scale mirrors the published setup; ``small`` and ``bench``
shrink host counts, durations and query counts while keeping the ratios
(buffer per port, query size relative to buffer, loads) that the results
depend on.  This module used to live in :mod:`repro.experiments.common`
(which still re-exports it for backward compatibility); it sits below the
scenario layer so both the figure harnesses and scenario builders can use it
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.sim.units import GBPS, KB


@dataclass
class ScenarioConfig:
    """Dimensions of a scenario, scaled for pure-Python runtimes."""

    name: str = "small"
    # Single-switch (DPDK-testbed-like) dimensions.
    num_hosts: int = 8
    link_rate_bps: float = 10 * GBPS
    buffer_kb_per_port_per_gbps: float = 5.12
    ecn_threshold_packets: int = 65
    duration: float = 0.02
    queries: int = 12
    incast_fanout: int = 14
    # Leaf-spine dimensions.
    num_leaves: int = 4
    num_spines: int = 4
    hosts_per_leaf: int = 4
    fabric_link_rate_bps: float = 10 * GBPS
    fabric_buffer_bytes_per_port: int = 256 * KB
    fabric_ecn_threshold_bytes: int = 90 * KB
    fabric_duration: float = 0.02
    fabric_queries: int = 8
    fabric_incast_fanout: int = 8
    # Fat-tree dimensions (shares the fabric_* rates/buffers/workload knobs).
    fattree_k: int = 4
    fattree_hosts_per_edge: int = 2
    # Transport.
    min_rto: float = 2e-3
    run_slack: float = 10.0  # run the sim this many x the workload duration

    def mtu_ecn_threshold_bytes(self, mtu: int = 1500) -> int:
        return self.ecn_threshold_packets * mtu


_SCALES: Dict[str, ScenarioConfig] = {
    "bench": ScenarioConfig(
        name="bench",
        num_hosts=8,
        duration=0.006,
        queries=4,
        incast_fanout=8,
        num_leaves=2,
        num_spines=2,
        hosts_per_leaf=3,
        fabric_duration=0.006,
        fabric_queries=3,
        fabric_incast_fanout=4,
        fabric_buffer_bytes_per_port=64 * KB,
        fabric_ecn_threshold_bytes=30 * KB,
        fattree_k=4,
        fattree_hosts_per_edge=1,
        min_rto=2e-3,
    ),
    "small": ScenarioConfig(
        name="small",
        fabric_buffer_bytes_per_port=128 * KB,
        fabric_ecn_threshold_bytes=45 * KB,
    ),
    "paper": ScenarioConfig(
        name="paper",
        num_hosts=8,
        duration=0.2,
        queries=60,
        incast_fanout=16,
        num_leaves=8,
        num_spines=8,
        hosts_per_leaf=16,
        fabric_link_rate_bps=100 * GBPS,
        fabric_buffer_bytes_per_port=512 * KB,
        fabric_ecn_threshold_bytes=720 * KB,
        fabric_duration=0.05,
        fabric_queries=40,
        fabric_incast_fanout=16,
        fattree_k=8,
        fattree_hosts_per_edge=4,
        min_rto=5e-3,
    ),
}


def get_scale(scale: str) -> ScenarioConfig:
    """Look up a named scale (``bench``, ``small`` or ``paper``)."""
    try:
        return replace(_SCALES[scale])
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; available: {', '.join(sorted(_SCALES))}"
        ) from None
