"""Campaign/runner adapter and CLI for stand-alone scenarios.

``run`` is the pseudo-experiment behind the campaign layer's ``"scenario"``
grid type: the executor calls it like any figure harness
(``run(scale=..., seed=..., scenario=...)``) and gets back an
:class:`~repro.experiments.common.ExperimentResult` with one summary row.

The module also backs ``python -m repro.scenario``::

    python -m repro.scenario run examples/scenario_dumbbell_burst.json
    python -m repro.scenario run spec.json --seed 3 --json
    python -m repro.scenario registries
    python -m repro.scenario validate examples/*.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.scenario.runner import run_scenario
from repro.scenario.spec import ScenarioSpec


def run(scale: str = "small", seed: int = 0, scenario: Optional[dict] = None):
    """Execute a scenario document; the campaign's ``"scenario"`` experiment.

    ``scenario`` is a :class:`~repro.scenario.spec.ScenarioSpec` dict.  The
    ``seed`` argument (the sweep axis) overrides any seed embedded in the
    document; ``scale`` is accepted for interface compatibility but ignored
    -- scenario documents are self-contained.
    """
    del scale
    if scenario is None:
        raise ValueError(
            "the 'scenario' experiment needs a scenario document; "
            "pass params={'scenario': {...}} (see repro.scenario.spec)")
    spec = replace(ScenarioSpec.from_dict(scenario), seed=seed)
    return run_scenario(spec).to_experiment_result()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads import reset_workload_ids

    spec = ScenarioSpec.from_file(args.spec)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    # Each engine flag overrides its own field only (--shards must not
    # clobber a --kernel given alongside it, and vice versa).
    engine = spec.engine
    if args.kernel is not None:
        engine = replace(engine, kernel=args.kernel)
    if args.shards is not None:
        engine = replace(engine, shards=args.shards)
    if args.partition is not None:
        engine = replace(engine, partition=args.partition)
    if engine is not spec.engine:
        spec = replace(spec, engine=engine)
    dashboard = None
    if args.live:
        # --live implies telemetry: force-enable the bus (keeping any
        # cadence the document configured) so there is something to render.
        if not spec.telemetry.enabled:
            spec = replace(spec,
                           telemetry=replace(spec.telemetry, enabled=True))
        if spec.engine.shards > 1:
            from repro.telemetry.dashboard import ShardDashboard

            dashboard = ShardDashboard(spec.label())
        else:
            from repro.telemetry.dashboard import LiveDashboard

            dashboard = LiveDashboard(spec.label())
    reset_workload_ids()
    result = run_scenario(spec, on_sample=dashboard)
    if dashboard is not None and result.telemetry is not None:
        dashboard.finish(result.telemetry)
    experiment_result = result.to_experiment_result()
    if args.json:
        print(json.dumps(experiment_result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"[{spec.label()}  hash={spec.config_hash()}]")
        print(experiment_result)
    shard_stats = getattr(result, "shard_stats", None)
    if shard_stats is not None and not args.json:
        _print_shard_rows(shard_stats)
    return 0


def _print_shard_rows(shard_stats: dict) -> None:
    """Per-shard diagnostic rows (stderr: never mixes into piped output)."""
    partition = shard_stats["partition"]
    print(f"[shards={partition['num_shards']} "
          f"strategy={partition['strategy']} "
          f"cut_links={len(partition['cut_links'])} "
          f"lookahead={partition['lookahead'] * 1e6:.2f}us "
          f"rounds={shard_stats['rounds']}]", file=sys.stderr)
    for row in shard_stats["shards"]:
        busy = row["busy_s"]
        blocked = row["blocked_s"]
        total = busy + blocked
        rate = row["events"] / busy if busy > 0 else 0.0
        print(f"  shard {row['shard']}: nodes={row['nodes']} "
              f"events={row['events']} ({rate:,.0f} ev/s) "
              f"handoffs out/in={row['handoffs_out']}/{row['handoffs_in']} "
              f"blocked={100 * blocked / total if total else 0:.0f}% "
              f"rss={row['peak_rss_kb']}kB", file=sys.stderr)


def _cmd_registries(args: argparse.Namespace) -> int:
    del args
    from repro.core.registry import available_schemes
    from repro.lb import available_load_balancers
    from repro.scenario.topologies import available_topologies
    from repro.scenario.transports import available_transport_profiles
    from repro.scenario.workloads import available_workloads
    from repro.sim.kernel import available_kernels

    print("schemes:            " + ", ".join(available_schemes()))
    print("topologies:         " + ", ".join(available_topologies()))
    print("workloads:          " + ", ".join(available_workloads()))
    print("transport profiles: " + ", ".join(available_transport_profiles()))
    print("load balancers:     " + ", ".join(available_load_balancers()))
    print("engine kernels:     " + ", ".join(available_kernels()))
    return 0


def _validate_fabric_resolves(spec: ScenarioSpec, seen: set) -> None:
    """Build the topology of a non-default-fabric spec (no traffic).

    Registry validation cannot see fabric *contents* -- whether
    ``failures``/``degraded`` endpoint names and ``tier_rates`` tier names
    actually exist is decided by the topology builder.  Constructing the
    (traffic-free) topology resolves them, so a renamed switch or tier in
    an example document fails validation instead of failing at run time.
    Distinct (topology, fabric) combinations are built once per call.
    """
    from repro.core.registry import make_buffer_manager
    from repro.scenario.spec import canonical_json
    from repro.scenario.topologies import make_topology

    if spec.fabric.is_default():
        return
    key = canonical_json([spec.topology.to_dict(), spec.fabric.to_dict()])
    if key in seen:
        return
    seen.add(key)
    topology = make_topology(spec.topology.kind,
                             lambda: make_buffer_manager("dt"),
                             **spec.resolved_topology_params())
    # Timeline endpoints resolve against the built network too, so a
    # renamed switch in an example's fabric.events fails validation here
    # instead of mid-simulation.
    network = getattr(topology, "network", None)
    if network is not None:
        for event in spec.fabric.events:
            network.check_fabric_event(event)


def _validate_partition_resolves(spec: ScenarioSpec, seen: set) -> None:
    """Build and partition the topology of a multi-shard spec (no traffic).

    ``EngineSpec.validate`` only checks that the strategy name exists;
    whether the cut is *valid* for this topology (enough pods/leaves,
    positive cut-link delays, full node cover) is decided by the
    partitioner against the built fabric.  Resolving it here makes a stale
    example -- say a shard count exceeding the pod count -- fail
    validation instead of failing at run time.
    """
    from repro.core.registry import make_buffer_manager
    from repro.netsim.partition import partition_topology
    from repro.scenario.spec import canonical_json
    from repro.scenario.topologies import make_topology

    if spec.engine.shards <= 1:
        return
    key = canonical_json([spec.topology.to_dict(), spec.engine.to_dict()])
    if key in seen:
        return
    seen.add(key)
    topology = make_topology(spec.topology.kind,
                             lambda: make_buffer_manager("dt"),
                             **spec.resolved_topology_params())
    partition_topology(topology, spec.engine.shards, spec.engine.partition)


def validate_spec_file(path: str) -> str:
    """Parse and validate one spec document; returns its detected kind.

    Scenario documents (no ``grids`` key) go through
    :class:`~repro.scenario.spec.ScenarioSpec` plus the runner's registry
    validation; campaign documents through
    :class:`~repro.campaign.spec.SweepSpec` expansion, with every embedded
    scenario document validated the same way.  Non-default fabric sections
    additionally build their (traffic-free) topology so failure/degradation
    endpoint names and tier names resolve.  Raises on the first problem, so
    stale example specs fail CI instead of rotting silently.
    """
    from repro.campaign.spec import SweepSpec
    from repro.scenario.runner import ScenarioRunner

    with open(path) as handle:
        document = json.load(handle)
    runner = ScenarioRunner()
    built: set = set()
    if isinstance(document, dict) and "grids" in document:
        sweep = SweepSpec.from_dict(document)
        runs = sweep.expand()
        if not runs:
            raise ValueError(f"campaign {path} expands to zero runs")
        for run_spec in runs:
            embedded = run_spec.params.get("scenario")
            if embedded is not None:
                spec = ScenarioSpec.from_dict(embedded)
                runner.validate(spec)
                _validate_fabric_resolves(spec, built)
                _validate_partition_resolves(spec, built)
        return f"campaign ({len(runs)} runs)"
    spec = ScenarioSpec.from_dict(document)
    runner.validate(spec)
    _validate_fabric_resolves(spec, built)
    _validate_partition_resolves(spec, built)
    return "scenario"


def _cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.specs:
        try:
            kind = validate_spec_file(path)
        except Exception as exc:  # noqa: BLE001 - report every parse error
            failures += 1
            print(f"FAIL {path}: {exc}")
        else:
            print(f"ok   {path} [{kind}]")
    if failures:
        print(f"{failures} of {len(args.specs)} spec files failed validation")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a scenario JSON document")
    p_run.add_argument("spec", help="path to a ScenarioSpec JSON file")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the document's seed")
    p_run.add_argument("--kernel", default=None,
                       help="override the document's engine.kernel "
                            "(e.g. heap, pooled)")
    p_run.add_argument("--shards", type=int, default=None,
                       help="override the document's engine.shards (run the "
                            "fabric as N parallel shard processes)")
    p_run.add_argument("--partition", default=None,
                       help="override the document's engine.partition "
                            "strategy (auto, pods, leaves, contiguous)")
    p_run.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of a table")
    p_run.add_argument("--live", action="store_true",
                       help="render a live telemetry dashboard while the "
                            "scenario runs (force-enables the sampling bus)")
    p_run.set_defaults(func=_cmd_run)

    p_reg = sub.add_parser("registries",
                           help="list registered schemes/topologies/workloads")
    p_reg.set_defaults(func=_cmd_registries)

    p_val = sub.add_parser(
        "validate",
        help="parse scenario/campaign JSON documents (CI example smoke)")
    p_val.add_argument("specs", nargs="+",
                       help="paths to scenario or campaign JSON files")
    p_val.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
