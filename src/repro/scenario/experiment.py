"""Campaign/runner adapter and CLI for stand-alone scenarios.

``run`` is the pseudo-experiment behind the campaign layer's ``"scenario"``
grid type: the executor calls it like any figure harness
(``run(scale=..., seed=..., scenario=...)``) and gets back an
:class:`~repro.experiments.common.ExperimentResult` with one summary row.

The module also backs ``python -m repro.scenario``::

    python -m repro.scenario run examples/scenario_dumbbell_burst.json
    python -m repro.scenario run spec.json --seed 3 --json
    python -m repro.scenario registries
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.scenario.runner import run_scenario
from repro.scenario.spec import ScenarioSpec


def run(scale: str = "small", seed: int = 0, scenario: Optional[dict] = None):
    """Execute a scenario document; the campaign's ``"scenario"`` experiment.

    ``scenario`` is a :class:`~repro.scenario.spec.ScenarioSpec` dict.  The
    ``seed`` argument (the sweep axis) overrides any seed embedded in the
    document; ``scale`` is accepted for interface compatibility but ignored
    -- scenario documents are self-contained.
    """
    del scale
    if scenario is None:
        raise ValueError(
            "the 'scenario' experiment needs a scenario document; "
            "pass params={'scenario': {...}} (see repro.scenario.spec)")
    spec = replace(ScenarioSpec.from_dict(scenario), seed=seed)
    return run_scenario(spec).to_experiment_result()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads import reset_workload_ids

    spec = ScenarioSpec.from_file(args.spec)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    reset_workload_ids()
    result = run_scenario(spec)
    experiment_result = result.to_experiment_result()
    if args.json:
        print(json.dumps(experiment_result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"[{spec.label()}  hash={spec.config_hash()}]")
        print(experiment_result)
    return 0


def _cmd_registries(args: argparse.Namespace) -> int:
    del args
    from repro.core.registry import available_schemes
    from repro.scenario.topologies import available_topologies
    from repro.scenario.transports import available_transport_profiles
    from repro.scenario.workloads import available_workloads

    print("schemes:            " + ", ".join(available_schemes()))
    print("topologies:         " + ", ".join(available_topologies()))
    print("workloads:          " + ", ".join(available_workloads()))
    print("transport profiles: " + ", ".join(available_transport_profiles()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a scenario JSON document")
    p_run.add_argument("spec", help="path to a ScenarioSpec JSON file")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the document's seed")
    p_run.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of a table")
    p_run.set_defaults(func=_cmd_run)

    p_reg = sub.add_parser("registries",
                           help="list registered schemes/topologies/workloads")
    p_reg.set_defaults(func=_cmd_registries)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
