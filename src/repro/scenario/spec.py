"""Declarative scenario specifications.

A :class:`ScenarioSpec` pins down one complete simulation: which
buffer-management *scheme* runs on the switches, which *topology* the network
has, which *workloads* inject traffic, and how the *transport* is configured.
Every component is referenced by registry name plus keyword parameters, so a
scenario is fully expressible as JSON::

    {
      "name": "dumbbell-burst",
      "scheme": {"name": "occamy", "kwargs": {"alpha": 4.0}},
      "topology": {"kind": "dumbbell", "params": {"num_pairs": 4}},
      "workloads": [
        {"kind": "burst", "params": {"burst_bytes": 100000}}
      ],
      "transport": {"protocol": "dctcp", "config": {"min_rto": 0.002}},
      "duration": 0.005,
      "seed": 0
    }

Like :class:`repro.campaign.spec.RunSpec`, a scenario has a stable
:meth:`~ScenarioSpec.config_hash` derived from the canonical JSON encoding of
its fields, so identical scenarios hash identically across processes and
sessions -- which is what lets the campaign layer cache and resume scenario
sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class SchemeSpec:
    """A buffer-management scheme by registry name plus constructor kwargs."""

    name: str
    kwargs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "SchemeSpec":
        if isinstance(data, str):  # shorthand: "occamy"
            return cls(name=data)
        return cls(name=str(data["name"]), kwargs=dict(data.get("kwargs", {})))


@dataclass
class TopologySpec:
    """A topology by registry kind plus builder parameters."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "TopologySpec":
        if isinstance(data, str):
            return cls(kind=data)
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass
class WorkloadSpec:
    """One traffic source: a workload registry kind plus parameters.

    Attributes:
        kind: workload factory name (``incast``, ``websearch``, ``poisson``,
            ``all_to_all``, ``all_reduce``, ``burst``, ``fixed``,
            ``packet_stream``, ``packet_burst``, ...).
        params: factory keyword parameters.
        transport: transport protocol for this workload's flows; ``None``
            falls back to the scenario's default protocol.
        rng_label: label of the derived random substream this workload draws
            from (defaults to ``kind``).  Two workloads with the same label
            share a stream seed, so give distinct labels to independent
            sources.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)
    transport: Optional[str] = None
    rng_label: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "transport": self.transport,
            "rng_label": self.rng_label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        return cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            transport=(None if data.get("transport") is None
                       else str(data["transport"])),
            rng_label=(None if data.get("rng_label") is None
                       else str(data["rng_label"])),
        )


#: The actions a fabric-timeline event may carry.
FABRIC_EVENT_ACTIONS = ("fail", "repair", "degrade")


def normalize_fabric_event(entry: object) -> Dict[str, object]:
    """One ``fabric.events`` entry in canonical form, or a loud ValueError.

    Accepts the canonical shape ``{"t": ..., "action": "fail", "link":
    [a, b]}`` and the compact shorthand where the action name carries the
    link (``{"t": ..., "fail": [a, b]}``).  ``factor`` is required for
    ``degrade`` and rejected elsewhere; unknown keys are rejected so typos
    cannot silently drop an event.
    """
    if not isinstance(entry, Mapping):
        raise ValueError(
            f"fabric.events entries must be objects, got {entry!r}")
    data = dict(entry)
    action = data.pop("action", None)
    link = data.pop("link", None)
    for name in FABRIC_EVENT_ACTIONS:
        if name in data:
            if action is not None:
                raise ValueError(
                    f"fabric.events entry declares two actions: {entry!r}")
            action = name
            link = data.pop(name)
    if action not in FABRIC_EVENT_ACTIONS:
        raise ValueError(
            "fabric.events entries need an action of "
            f"{'/'.join(FABRIC_EVENT_ACTIONS)}, got {entry!r}")
    if not isinstance(link, (list, tuple)) or len(link) != 2:
        raise ValueError(
            f"fabric.events link must be an [a, b] endpoint pair, "
            f"got {link!r}")
    if "t" not in data:
        raise ValueError(f"fabric.events entry has no timestamp 't': {entry!r}")
    t = float(data.pop("t"))
    if t < 0:
        raise ValueError(
            f"fabric.events timestamps must be non-negative, got {t!r}")
    event: Dict[str, object] = {
        "t": t, "action": str(action), "link": [str(link[0]), str(link[1])],
    }
    factor = data.pop("factor", None)
    if action == "degrade":
        if factor is None:
            raise ValueError(
                f"fabric.events degrade entries need a 'factor': {entry!r}")
        factor = float(factor)
        if not 0 < factor <= 1:
            raise ValueError(
                f"fabric.events degrade factor must be in (0, 1], "
                f"got {factor!r}")
        event["factor"] = factor
    elif factor is not None:
        raise ValueError(
            f"'factor' only applies to degrade events, got {entry!r}")
    if data:
        raise ValueError(
            f"unknown fabric.events keys {sorted(data)} in {entry!r}")
    return event


@dataclass
class FabricSpec:
    """The fabric model of a scenario: per-tier rates, failures, degradation.

    Attributes:
        tier_rates: per-tier link-rate overrides, keyed by the topology's
            tier names (e.g. ``{"core": 40e9}`` on a fat-tree; tiers are
            ``host``/``agg``/``core`` for ``fat_tree``, ``host``/``spine``
            for ``leaf_spine``, ``host``/``trunk`` for ``dumbbell``,
            ``host`` for ``single_switch``, ``port`` for ``raw_switch``).
        failures: failed links as ``[a, b]`` endpoint-name pairs (e.g.
            ``["agg0_0", "core1"]``); both directions fail and routing is
            pruned so no candidate path crosses them.
        degraded: capacity degradations as ``[a, b, factor]`` triples with
            ``factor`` in (0, 1] (``[port_id, factor]`` pairs on
            ``raw_switch``); serialization and ECMP weights scale.
        events: the *mid-run* timeline -- ``{"t": seconds, "action":
            "fail"|"repair"|"degrade", "link": [a, b], "factor":?}`` entries
            (shorthand: ``{"t": ..., "fail": [a, b]}``), executed by the
            runner through ``sim.at`` -> ``Network.fail_link`` /
            ``repair_link`` / ``degrade_link``.  Validated at build time:
            timestamps non-negative and sorted, ``repair`` only of a link
            that is failed at that point of the timeline (initial
            ``failures`` count), no double ``fail``.

    The default (all empty) is exactly the symmetric single-rate fabric, and
    a default fabric is *omitted* from :meth:`ScenarioSpec.to_dict`, so
    pre-fabric scenario documents, config hashes and goldens are unchanged.
    ``events`` participates in the canonical document (and hash) only when
    non-empty, preserving every pre-timeline fabric hash too.
    """

    tier_rates: Dict[str, float] = field(default_factory=dict)
    failures: List[List[object]] = field(default_factory=list)
    degraded: List[List[object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)

    def is_default(self) -> bool:
        return not (self.tier_rates or self.failures or self.degraded
                    or self.events)

    def validate(self) -> None:
        """Shape-check the declarative fields with precise messages."""
        for tier, rate in self.tier_rates.items():
            if not float(rate) > 0:
                raise ValueError(
                    f"fabric.tier_rates[{tier!r}] must be positive, "
                    f"got {rate!r}")
        for entry in self.failures:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError(
                    f"fabric.failures entries must be [a, b] endpoint "
                    f"pairs, got {entry!r}")
        for entry in self.degraded:
            if not isinstance(entry, (list, tuple)) or len(entry) not in (2, 3):
                raise ValueError(
                    "fabric.degraded entries must be [a, b, factor] "
                    f"(or [port, factor] on raw_switch), got {entry!r}")
            factor = float(entry[-1])
            if not 0 < factor <= 1:
                raise ValueError(
                    f"fabric.degraded factor must be in (0, 1], got {factor!r}")
        self._validate_events()

    def _validate_events(self) -> None:
        """Normalize the timeline and check its sequencing invariants.

        Rewrites ``self.events`` into canonical form (so documents built
        from shorthand entries serialize and hash identically to explicit
        ones) and walks the failure state machine: the timeline must be
        sorted, a link fails only while healthy, and a repair only follows
        a failure (the initial ``failures`` count as failed at t=0).
        """
        if not self.events:
            return
        normalized = [normalize_fabric_event(entry) for entry in self.events]
        failed = {frozenset((str(a), str(b))) for a, b in self.failures}
        last_t = 0.0
        for event in normalized:
            if event["t"] < last_t:
                raise ValueError(
                    "fabric.events must be sorted by timestamp; "
                    f"t={event['t']!r} follows t={last_t!r}")
            last_t = event["t"]
            key = frozenset(event["link"])
            if event["action"] == "fail":
                if key in failed:
                    raise ValueError(
                        f"fabric.events: link {event['link']} fails at "
                        f"t={event['t']} but is already failed")
                failed.add(key)
            elif event["action"] == "repair":
                if key not in failed:
                    raise ValueError(
                        f"fabric.events: repair of link {event['link']} at "
                        f"t={event['t']} but it is not failed at that point "
                        "(declare it in fabric.failures or fail it first)")
                failed.discard(key)
        self.events = normalized

    def topology_kwargs(self) -> Dict[str, object]:
        """The builder keyword arguments this fabric adds to a topology."""
        kwargs: Dict[str, object] = {}
        if self.tier_rates:
            kwargs["tier_rates"] = {k: float(v)
                                    for k, v in self.tier_rates.items()}
        if self.failures:
            kwargs["failures"] = [list(entry) for entry in self.failures]
        if self.degraded:
            kwargs["degraded"] = [list(entry) for entry in self.degraded]
        return kwargs

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "tier_rates": {str(k): float(v)
                           for k, v in sorted(self.tier_rates.items())},
            "failures": [list(entry) for entry in self.failures],
            "degraded": [list(entry) for entry in self.degraded],
        }
        # An empty timeline is omitted so pre-timeline fabric documents
        # (and their config hashes) are byte-identical.
        if self.events:
            doc["events"] = [normalize_fabric_event(e) for e in self.events]
        return doc

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, object]]) -> "FabricSpec":
        if data is None:
            return cls()
        spec = cls(
            tier_rates={str(k): float(v)
                        for k, v in dict(data.get("tier_rates", {})).items()},
            failures=[list(entry) for entry in data.get("failures", [])],
            degraded=[list(entry) for entry in data.get("degraded", [])],
            events=[dict(entry) if isinstance(entry, Mapping) else entry
                    for entry in data.get("events", [])],
        )
        spec.validate()
        return spec


@dataclass
class LoadBalancerSpec:
    """The load-balancer section: an uplink-choice policy for every switch.

    Attributes:
        name: policy registry name (see :mod:`repro.lb`): ``ecmp`` (the
            default static flow hash), ``flowlet``, ``drill``, ``spray``,
            or any plugin registration.
        kwargs: policy constructor overrides (e.g. ``{"gap": 5e-05}`` for
            flowlet, ``{"d": 3}`` for drill); registered defaults apply
            underneath.

    The default (``ecmp`` with no kwargs) is *omitted* from
    :meth:`ScenarioSpec.to_dict` -- the same backward-compat trick as
    :class:`FabricSpec` -- so an explicit ``"lb": {"name": "ecmp"}`` and an
    omitted section produce byte-identical canonical documents and config
    hashes, both equal to the pre-LB ones.
    """

    name: str = "ecmp"
    kwargs: Dict[str, object] = field(default_factory=dict)

    def is_default(self) -> bool:
        return self.name == "ecmp" and not self.kwargs

    def validate(self) -> None:
        if not self.name:
            raise ValueError("lb.name must be non-empty")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(
            cls,
            data: Union[None, str, Mapping[str, object]],
    ) -> "LoadBalancerSpec":
        if data is None:
            return cls()
        if isinstance(data, str):  # shorthand: "flowlet"
            return cls(name=data)
        spec = cls(name=str(data.get("name", "ecmp")),
                   kwargs=dict(data.get("kwargs", {})))
        spec.validate()
        return spec


#: Default ring capacity (samples kept per telemetry series).
TELEMETRY_DEFAULT_CAPACITY = 512


@dataclass
class TelemetrySpec:
    """The telemetry section of a scenario: sampling-bus configuration.

    Attributes:
        enabled: attach the sampling bus (:mod:`repro.telemetry`) to the
            run.  Off by default, with zero hot-path cost when off -- the
            bus is pull-based (it reads existing counters on its own
            sim-time ticks) and never instruments the event path.
        interval: sim-time sampling cadence in seconds.  ``None`` (the
            default cadence) spreads the ring across the run horizon
            (``duration * run_slack / (capacity - 1)``), so a default run
            never wraps.  An explicit interval that produces more ticks
            than ``capacity`` keeps the *newest* samples (ring wraparound).
        capacity: fixed ring-buffer capacity of every series.
        per_port: record per-port backlog series on every switch (the
            bulk of a fabric document); aggregate and per-switch series
            are always recorded.

    The default (disabled) section is *omitted* from
    :meth:`ScenarioSpec.to_dict`, the same backward-compat trick as
    :class:`FabricSpec`: pre-telemetry documents, config hashes and
    campaign caches are unchanged.
    """

    enabled: bool = False
    interval: Optional[float] = None
    capacity: int = TELEMETRY_DEFAULT_CAPACITY
    per_port: bool = True

    def is_default(self) -> bool:
        return (not self.enabled and self.interval is None
                and self.capacity == TELEMETRY_DEFAULT_CAPACITY
                and self.per_port)

    def validate(self) -> None:
        if self.interval is not None and not float(self.interval) > 0:
            raise ValueError(
                f"telemetry.interval must be positive, got {self.interval!r}")
        if int(self.capacity) < 2:
            raise ValueError(
                f"telemetry.capacity must be >= 2, got {self.capacity!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": bool(self.enabled),
            "interval": (None if self.interval is None
                         else float(self.interval)),
            "capacity": int(self.capacity),
            "per_port": bool(self.per_port),
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, object]]) -> "TelemetrySpec":
        if data is None:
            return cls()
        spec = cls(
            enabled=bool(data.get("enabled", False)),
            interval=(None if data.get("interval") is None
                      else float(data["interval"])),
            capacity=int(data.get("capacity", TELEMETRY_DEFAULT_CAPACITY)),
            per_port=bool(data.get("per_port", True)),
        )
        spec.validate()
        return spec


@dataclass
class EngineSpec:
    """The engine section of a scenario: which simulation kernel runs it.

    Attributes:
        kernel: registered kernel name (see :mod:`repro.sim.kernel`):
            ``heap`` (the pure-Python oracle, the default) or ``pooled``
            (free-listed events plus packet/descriptor pools).  Campaign
            sweeps address it with an ``engine.kernel`` dotted axis.
        shards: number of conservative-parallel shard processes (see
            :mod:`repro.sim.shard`); ``1`` (the default) runs in-process.
            Sweepable via an ``engine.shards`` dotted axis.
        partition: fabric partitioning strategy for sharded runs (see
            :data:`repro.netsim.partition.PARTITION_STRATEGIES`):
            ``auto`` (topology-aware, the default), ``pods``, ``leaves``
            or ``contiguous``.

    The default (``heap`` / 1 shard / ``auto``) is *omitted* from
    :meth:`ScenarioSpec.to_dict` -- the same backward-compat trick as
    :class:`FabricSpec` / :class:`LoadBalancerSpec` /
    :class:`TelemetrySpec` -- and the ``shards`` / ``partition`` keys are
    individually omitted when default, so an explicit
    ``"engine": {"kernel": "pooled"}`` keeps its pre-sharding canonical
    document and config hash.  A non-default engine *does* change the
    hash: result documents are expected to be byte-identical across
    engine configurations (that is the differential gate), but which
    engine produced a stored artifact is part of its identity.
    """

    kernel: str = "heap"
    shards: int = 1
    partition: str = "auto"

    def is_default(self) -> bool:
        return (self.kernel == "heap" and self.shards == 1
                and self.partition == "auto")

    def validate(self) -> None:
        # Imported lazily: the spec layer stays importable without pulling
        # the whole sim stack in at module-import time.
        from repro.netsim.partition import PARTITION_STRATEGIES
        from repro.sim.kernel import available_kernels

        if self.kernel not in available_kernels():
            raise ValueError(
                f"unknown engine.kernel {self.kernel!r}; "
                f"available: {', '.join(available_kernels())}")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ValueError(
                f"engine.shards must be an integer, got {self.shards!r}")
        if self.shards < 1:
            raise ValueError(
                f"engine.shards must be >= 1, got {self.shards}")
        if self.partition not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown engine.partition {self.partition!r}; "
                f"available: {', '.join(PARTITION_STRATEGIES)}")

    def to_dict(self) -> Dict[str, object]:
        # shards/partition only appear when non-default, so pre-sharding
        # engine documents (and their config hashes) are byte-stable.
        doc: Dict[str, object] = {"kernel": self.kernel}
        if self.shards != 1:
            doc["shards"] = self.shards
        if self.partition != "auto":
            doc["partition"] = self.partition
        return doc

    @classmethod
    def from_dict(
            cls,
            data: Union[None, str, Mapping[str, object]],
    ) -> "EngineSpec":
        if data is None:
            return cls()
        if isinstance(data, str):  # shorthand: "pooled"
            return cls(kernel=data)
        return cls(
            kernel=str(data.get("kernel", "heap")),
            shards=int(data.get("shards", 1)),
            partition=str(data.get("partition", "auto")),
        )


@dataclass
class TransportSpec:
    """Transport configuration: default protocol + config profile/overrides.

    Attributes:
        protocol: default transport protocol name (``dctcp``, ``cubic``,
            ``reno``) for workloads that do not specify their own.
        profile: name of a registered transport-config profile (see
            :mod:`repro.scenario.transports`); ``None`` uses the built-in
            :class:`~repro.netsim.transport.base.TransportConfig` defaults.
        config: keyword overrides applied on top of the profile.
    """

    protocol: str = "dctcp"
    profile: Optional[str] = None
    config: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "profile": self.profile,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TransportSpec":
        return cls(
            protocol=str(data.get("protocol", "dctcp")),
            profile=(None if data.get("profile") is None
                     else str(data["profile"])),
            config=dict(data.get("config", {})),
        )


@dataclass
class ScenarioSpec:
    """One fully-determined scenario: scheme x topology x workloads x transport.

    Attributes:
        name: human-readable scenario name.  It participates in the config
            hash, so renaming a scenario invalidates cached campaign results
            -- rename with intent.
        scheme / topology / workloads / transport: the four composed specs.
        fabric: the link-level fabric model (per-tier rates, failed and
            degraded links); the default is the symmetric single-rate
            fabric and is omitted from the canonical document, so existing
            hashes are stable.  Campaign sweeps address it with dotted
            axes such as ``fabric.tier_rates.core`` or
            ``fabric.failures[0]``.
        lb: the load-balancer section (see :class:`LoadBalancerSpec`);
            ``ecmp`` by default and omitted from the canonical document
            when default, so existing hashes are stable.  Campaign sweeps
            address it with ``lb.name`` / ``lb.kwargs.gap`` dotted axes.
        telemetry: the sampling-bus section (see :class:`TelemetrySpec`);
            disabled by default and omitted from the canonical document
            when default, so existing hashes are stable.
        engine: the simulation-kernel section (see :class:`EngineSpec`);
            ``heap`` by default and omitted from the canonical document
            when default, so existing hashes are stable.  Campaign sweeps
            address it with an ``engine.kernel`` dotted axis.
        duration: workload generation window in seconds; generators emit
            traffic within ``[0, duration)``.
        run_slack: the simulation runs until ``duration * run_slack`` so
            late flows can drain (packet-level scenarios typically use 1.0).
        seed: root random seed; every workload derives an independent child
            stream from it.
        alpha_overrides: per-class-index alpha overrides applied to every
            switch queue (e.g. ``{0: 8.0, 1: 1.0}`` for the strict-priority
            experiments).
    """

    name: str
    scheme: SchemeSpec
    topology: TopologySpec
    workloads: List[WorkloadSpec] = field(default_factory=list)
    transport: TransportSpec = field(default_factory=TransportSpec)
    fabric: FabricSpec = field(default_factory=FabricSpec)
    lb: LoadBalancerSpec = field(default_factory=LoadBalancerSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    duration: float = 0.02
    run_slack: float = 10.0
    seed: int = 0
    alpha_overrides: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "scheme": self.scheme.to_dict(),
            "topology": self.topology.to_dict(),
            "workloads": [w.to_dict() for w in self.workloads],
            "transport": self.transport.to_dict(),
            "duration": self.duration,
            "run_slack": self.run_slack,
            "seed": self.seed,
            # JSON objects have string keys; normalize so the canonical
            # encoding (and thus the config hash) is representation-stable.
            "alpha_overrides": {
                str(k): float(v) for k, v in self.alpha_overrides.items()
            },
        }
        # A default fabric is omitted: pre-fabric documents and config
        # hashes stay byte-identical (and campaign --resume caches stay
        # valid) for every symmetric scenario.
        if not self.fabric.is_default():
            doc["fabric"] = self.fabric.to_dict()
        # Same trick for the load balancer: the ecmp default adds nothing.
        if not self.lb.is_default():
            doc["lb"] = self.lb.to_dict()
        # Same trick for telemetry: the disabled default adds nothing.
        if not self.telemetry.is_default():
            doc["telemetry"] = self.telemetry.to_dict()
        # Same trick for the engine: the heap default adds nothing.
        if not self.engine.is_default():
            doc["engine"] = self.engine.to_dict()
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        workloads = data.get("workloads", [])
        if not isinstance(workloads, (list, tuple)):
            raise ValueError(f"workloads must be a list, got {workloads!r}")
        return cls(
            name=str(data.get("name", "scenario")),
            scheme=SchemeSpec.from_dict(data["scheme"]),
            topology=TopologySpec.from_dict(data["topology"]),
            workloads=[WorkloadSpec.from_dict(w) for w in workloads],
            transport=TransportSpec.from_dict(data.get("transport", {})),
            fabric=FabricSpec.from_dict(data.get("fabric")),
            lb=LoadBalancerSpec.from_dict(data.get("lb")),
            telemetry=TelemetrySpec.from_dict(data.get("telemetry")),
            engine=EngineSpec.from_dict(data.get("engine")),
            duration=float(data.get("duration", 0.02)),
            run_slack=float(data.get("run_slack", 10.0)),
            seed=int(data.get("seed", 0)),
            alpha_overrides={
                int(k): float(v)
                for k, v in data.get("alpha_overrides", {}).items()
            },
        )

    def resolved_topology_params(self) -> Dict[str, object]:
        """Topology builder params with the fabric section merged in.

        The single authority for the merge (the runner and the ``validate``
        CLI both use it): declaring a fabric dimension in *both* places is
        rejected, so a document cannot silently shadow its fabric section.
        """
        params = dict(self.topology.params)
        if self.fabric.is_default():
            return params
        fabric_kwargs = self.fabric.topology_kwargs()
        overlap = sorted(set(fabric_kwargs) & set(params))
        if overlap:
            raise ValueError(
                "fabric section and topology params both set "
                f"{', '.join(overlap)}; declare them once, in 'fabric'")
        params.update(fabric_kwargs)
        return params

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    def config_hash(self) -> str:
        """A 16-hex-digit digest stable across processes and sessions."""
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """Compact identity for progress lines and logs."""
        return (f"{self.name} [{self.scheme.name} x {self.topology.kind} x "
                f"{'+'.join(w.kind for w in self.workloads)} seed={self.seed}]")
