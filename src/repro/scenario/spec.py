"""Declarative scenario specifications.

A :class:`ScenarioSpec` pins down one complete simulation: which
buffer-management *scheme* runs on the switches, which *topology* the network
has, which *workloads* inject traffic, and how the *transport* is configured.
Every component is referenced by registry name plus keyword parameters, so a
scenario is fully expressible as JSON::

    {
      "name": "dumbbell-burst",
      "scheme": {"name": "occamy", "kwargs": {"alpha": 4.0}},
      "topology": {"kind": "dumbbell", "params": {"num_pairs": 4}},
      "workloads": [
        {"kind": "burst", "params": {"burst_bytes": 100000}}
      ],
      "transport": {"protocol": "dctcp", "config": {"min_rto": 0.002}},
      "duration": 0.005,
      "seed": 0
    }

Like :class:`repro.campaign.spec.RunSpec`, a scenario has a stable
:meth:`~ScenarioSpec.config_hash` derived from the canonical JSON encoding of
its fields, so identical scenarios hash identically across processes and
sessions -- which is what lets the campaign layer cache and resume scenario
sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class SchemeSpec:
    """A buffer-management scheme by registry name plus constructor kwargs."""

    name: str
    kwargs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "SchemeSpec":
        if isinstance(data, str):  # shorthand: "occamy"
            return cls(name=data)
        return cls(name=str(data["name"]), kwargs=dict(data.get("kwargs", {})))


@dataclass
class TopologySpec:
    """A topology by registry kind plus builder parameters."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "TopologySpec":
        if isinstance(data, str):
            return cls(kind=data)
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass
class WorkloadSpec:
    """One traffic source: a workload registry kind plus parameters.

    Attributes:
        kind: workload factory name (``incast``, ``websearch``, ``poisson``,
            ``all_to_all``, ``all_reduce``, ``burst``, ``fixed``,
            ``packet_stream``, ``packet_burst``, ...).
        params: factory keyword parameters.
        transport: transport protocol for this workload's flows; ``None``
            falls back to the scenario's default protocol.
        rng_label: label of the derived random substream this workload draws
            from (defaults to ``kind``).  Two workloads with the same label
            share a stream seed, so give distinct labels to independent
            sources.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)
    transport: Optional[str] = None
    rng_label: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "transport": self.transport,
            "rng_label": self.rng_label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        return cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            transport=(None if data.get("transport") is None
                       else str(data["transport"])),
            rng_label=(None if data.get("rng_label") is None
                       else str(data["rng_label"])),
        )


@dataclass
class TransportSpec:
    """Transport configuration: default protocol + config profile/overrides.

    Attributes:
        protocol: default transport protocol name (``dctcp``, ``cubic``,
            ``reno``) for workloads that do not specify their own.
        profile: name of a registered transport-config profile (see
            :mod:`repro.scenario.transports`); ``None`` uses the built-in
            :class:`~repro.netsim.transport.base.TransportConfig` defaults.
        config: keyword overrides applied on top of the profile.
    """

    protocol: str = "dctcp"
    profile: Optional[str] = None
    config: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "profile": self.profile,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TransportSpec":
        return cls(
            protocol=str(data.get("protocol", "dctcp")),
            profile=(None if data.get("profile") is None
                     else str(data["profile"])),
            config=dict(data.get("config", {})),
        )


@dataclass
class ScenarioSpec:
    """One fully-determined scenario: scheme x topology x workloads x transport.

    Attributes:
        name: human-readable scenario name.  It participates in the config
            hash, so renaming a scenario invalidates cached campaign results
            -- rename with intent.
        scheme / topology / workloads / transport: the four composed specs.
        duration: workload generation window in seconds; generators emit
            traffic within ``[0, duration)``.
        run_slack: the simulation runs until ``duration * run_slack`` so
            late flows can drain (packet-level scenarios typically use 1.0).
        seed: root random seed; every workload derives an independent child
            stream from it.
        alpha_overrides: per-class-index alpha overrides applied to every
            switch queue (e.g. ``{0: 8.0, 1: 1.0}`` for the strict-priority
            experiments).
    """

    name: str
    scheme: SchemeSpec
    topology: TopologySpec
    workloads: List[WorkloadSpec] = field(default_factory=list)
    transport: TransportSpec = field(default_factory=TransportSpec)
    duration: float = 0.02
    run_slack: float = 10.0
    seed: int = 0
    alpha_overrides: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scheme": self.scheme.to_dict(),
            "topology": self.topology.to_dict(),
            "workloads": [w.to_dict() for w in self.workloads],
            "transport": self.transport.to_dict(),
            "duration": self.duration,
            "run_slack": self.run_slack,
            "seed": self.seed,
            # JSON objects have string keys; normalize so the canonical
            # encoding (and thus the config hash) is representation-stable.
            "alpha_overrides": {
                str(k): float(v) for k, v in self.alpha_overrides.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        workloads = data.get("workloads", [])
        if not isinstance(workloads, (list, tuple)):
            raise ValueError(f"workloads must be a list, got {workloads!r}")
        return cls(
            name=str(data.get("name", "scenario")),
            scheme=SchemeSpec.from_dict(data["scheme"]),
            topology=TopologySpec.from_dict(data["topology"]),
            workloads=[WorkloadSpec.from_dict(w) for w in workloads],
            transport=TransportSpec.from_dict(data.get("transport", {})),
            duration=float(data.get("duration", 0.02)),
            run_slack=float(data.get("run_slack", 10.0)),
            seed=int(data.get("seed", 0)),
            alpha_overrides={
                int(k): float(v)
                for k, v in data.get("alpha_overrides", {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    def config_hash(self) -> str:
        """A 16-hex-digit digest stable across processes and sessions."""
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """Compact identity for progress lines and logs."""
        return (f"{self.name} [{self.scheme.name} x {self.topology.kind} x "
                f"{'+'.join(w.kind for w in self.workloads)} seed={self.seed}]")
