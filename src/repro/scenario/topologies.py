"""The topology registry: names -> topology builders.

Every entry couples a builder callable with its *level*:

* ``network`` -- the builder returns a topology exposing ``.network`` (hosts,
  links, transport); workloads produce :class:`~repro.workloads.spec.FlowSpec`
  lists that the runner injects as transport connections.
* ``switch`` -- the builder returns a topology exposing ``.switch`` and no
  network; workloads produce raw ``(time, size_bytes, port)`` arrivals applied
  straight to the switch ingress (the P4-prototype figures).

Builders take ``(manager_factory, **params)`` where ``manager_factory`` is a
zero-argument callable producing a fresh buffer manager per switch and
``params`` come verbatim from :class:`~repro.scenario.spec.TopologySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.scenario.registry import Registry
from repro.topology.dumbbell import DumbbellTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.raw_switch import RawSwitchTopology
from repro.topology.single_switch import SingleSwitchTopology

LEVEL_NETWORK = "network"
LEVEL_SWITCH = "switch"


@dataclass
class TopologyEntry:
    builder: Callable[..., object]
    level: str = LEVEL_NETWORK


_TOPOLOGIES: Registry[TopologyEntry] = Registry("topology")


def register_topology(
    name: str,
    builder: Callable[..., object],
    level: str = LEVEL_NETWORK,
    override: bool = False,
) -> None:
    """Register a topology builder under ``name``."""
    if level not in (LEVEL_NETWORK, LEVEL_SWITCH):
        raise ValueError(f"level must be 'network' or 'switch', got {level!r}")
    _TOPOLOGIES.register(name, TopologyEntry(builder=builder, level=level),
                         override=override)


def unregister_topology(name: str) -> None:
    _TOPOLOGIES.unregister(name)


def available_topologies() -> List[str]:
    return _TOPOLOGIES.names()


def topology_level(name: str) -> str:
    """The level (``network`` or ``switch``) of topology ``name``."""
    return _TOPOLOGIES.get(name).level


def make_topology(name: str, manager_factory: Callable[[], object], **params):
    """Build the topology registered under ``name``.

    Network-level topologies get their link-arrival event priorities
    assigned here (see ``Network.assign_event_priorities``): every process
    that builds the same spec derives the same priorities, which is what
    keeps equal-timestamp arrival ordering identical between the
    single-process oracle and the sharded engine's workers.
    """
    entry = _TOPOLOGIES.get(name)
    topology = entry.builder(manager_factory, **params)
    network = getattr(topology, "network", None)
    if network is not None and hasattr(network, "assign_event_priorities"):
        network.assign_event_priorities()
    return topology


# ----------------------------------------------------------------------
# Built-in topologies
# ----------------------------------------------------------------------
def _single_switch(manager_factory, **params) -> SingleSwitchTopology:
    return SingleSwitchTopology(manager_factory=manager_factory, **params)


def _leaf_spine(manager_factory, **params) -> LeafSpineTopology:
    return LeafSpineTopology(manager_factory=manager_factory, **params)


def _dumbbell(manager_factory, **params) -> DumbbellTopology:
    return DumbbellTopology(manager_factory=manager_factory, **params)


def _fat_tree(manager_factory, **params) -> FatTreeTopology:
    return FatTreeTopology(manager_factory=manager_factory, **params)


def _raw_switch(manager_factory, **params) -> RawSwitchTopology:
    return RawSwitchTopology(manager_factory=manager_factory, **params)


register_topology("single_switch", _single_switch, level=LEVEL_NETWORK)
register_topology("leaf_spine", _leaf_spine, level=LEVEL_NETWORK)
register_topology("fat_tree", _fat_tree, level=LEVEL_NETWORK)
register_topology("dumbbell", _dumbbell, level=LEVEL_NETWORK)
register_topology("raw_switch", _raw_switch, level=LEVEL_SWITCH)
