"""Builders turning the paper's canonical setups into ScenarioSpecs.

These functions encode the three experiment harness shapes of the paper as
declarative scenarios:

* :func:`single_switch_scenario` -- the DPDK software-switch testbed
  (Section 6.2): incast queries + web-search background on a star topology;
* :func:`leaf_spine_scenario` -- the ns-3 leaf-spine simulations
  (Section 6.4): paced incast queries + web-search or collective background;
* :func:`packet_burst_scenario` -- the P4-prototype micro-benchmarks
  (Figures 3/11/12): raw packet streams and bursts on a bare switch.

They reproduce the legacy runners of :mod:`repro.experiments.common`
parameter-for-parameter (including derived quantities such as fanout caps and
query pacing), so a figure harness re-expressed through them is
trace-identical to the original hand-wired code.  Every returned spec is
JSON-serializable: ``spec.to_dict()`` is a valid campaign scenario document.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.scenario.scales import ScenarioConfig
from repro.scenario.spec import (
    FabricSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TransportSpec,
    WorkloadSpec,
)
from repro.sim.units import KB
from repro.workloads.spec import FlowSpec

FlowLike = Union[FlowSpec, Dict[str, object]]


def _flow_dict(flow: FlowLike, keep_ids: bool) -> Dict[str, object]:
    """Normalize a FlowSpec or dict into fixed-workload form."""
    if isinstance(flow, FlowSpec):
        entry: Dict[str, object] = {
            "src": flow.src,
            "dst": flow.dst,
            "size_bytes": flow.size_bytes,
            "start_time": flow.start_time,
            "priority": flow.priority,
            "query_id": flow.query_id,
        }
        if keep_ids:
            # Pre-built FlowSpecs already consumed ids from the global
            # counter; pin them so the run is identical to injecting the
            # objects directly.
            entry["flow_id"] = flow.flow_id
        return entry
    return dict(flow)


def fixed_flows_workload(
    flows: Sequence[FlowLike],
    transport: Optional[str] = None,
    keep_ids: bool = True,
) -> WorkloadSpec:
    """Wrap explicit flows (FlowSpecs or dicts) as a ``fixed`` workload.

    ``keep_ids`` pins the flow ids of pre-built :class:`FlowSpec` objects so
    an in-process run is identical to injecting the objects directly (the
    deprecated-shim contract).  A pinned document is **not** portable: replay
    it after the global id counter was reset (another process, a campaign
    worker) and the pinned ids collide with freshly assigned ones -- the
    runner rejects such runs.  Pass ``keep_ids=False`` when building a
    scenario document meant to be serialized and re-run elsewhere.
    """
    return WorkloadSpec(
        kind="fixed",
        params={"flows": [_flow_dict(f, keep_ids) for f in flows]},
        transport=transport,
    )


def single_switch_scenario(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.5,
    background_transport: str = "dctcp",
    query_transport: str = "dctcp",
    queues_per_port: int = 1,
    scheduler: str = "fifo",
    query_priority: int = 0,
    background_priority: int = 0,
    alpha_overrides: Optional[Dict[int, float]] = None,
    scheme_kwargs: Optional[Dict[str, object]] = None,
    extra_flows: Optional[Sequence[FlowLike]] = None,
    include_background: bool = True,
    fabric: Optional[FabricSpec] = None,
    name: str = "single_switch",
) -> ScenarioSpec:
    """The DPDK-testbed scenario: incast queries + web-search background.

    ``fabric`` injects the fabric model (the star's single tier is
    ``host``; degraded host links are supported, failures are not).
    """
    servers = config.num_hosts - 1
    workloads: List[WorkloadSpec] = [
        WorkloadSpec(
            kind="incast",
            rng_label="query",
            transport=query_transport,
            params={
                "query_size_bytes": query_size_bytes,
                "fanout": min(config.incast_fanout, max(1, 2 * servers)),
                "arrival": "poisson",
                "queries_per_second": max(1.0, config.queries / config.duration),
                "priority": query_priority,
            },
        )
    ]
    if include_background and background_load > 0:
        workloads.append(
            WorkloadSpec(
                kind="websearch",
                rng_label="bg",
                transport=background_transport,
                params={
                    "load": background_load,
                    "load_scope": "aggregate",
                    "priority": background_priority,
                },
            )
        )
    if extra_flows:
        workloads.append(
            fixed_flows_workload(extra_flows, transport=background_transport)
        )
    return ScenarioSpec(
        name=name,
        scheme=SchemeSpec(name=scheme, kwargs=dict(scheme_kwargs or {})),
        topology=TopologySpec(
            kind="single_switch",
            params={
                "num_hosts": config.num_hosts,
                "link_rate_bps": config.link_rate_bps,
                "buffer_kb_per_port_per_gbps": config.buffer_kb_per_port_per_gbps,
                "queues_per_port": queues_per_port,
                "scheduler": scheduler,
                "ecn_threshold_bytes": config.mtu_ecn_threshold_bytes(),
            },
        ),
        workloads=workloads,
        transport=TransportSpec(protocol="dctcp",
                                config={"min_rto": config.min_rto}),
        fabric=fabric or FabricSpec(),
        duration=config.duration,
        run_slack=config.run_slack,
        seed=seed,
        alpha_overrides=dict(alpha_overrides or {}),
    )


def leaf_spine_scenario(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.4,
    background_kind: str = "websearch",
    background_flow_size: int = 256 * KB,
    query_load_queries: Optional[int] = None,
    scheme_kwargs: Optional[Dict[str, object]] = None,
    buffer_bytes_per_port: Optional[int] = None,
    fabric: Optional[FabricSpec] = None,
    name: str = "leaf_spine",
) -> ScenarioSpec:
    """The ns-3-style leaf-spine scenario (Section 6.4).

    ``fabric`` injects the asymmetric fabric model (tiers ``host`` /
    ``spine``, failures such as ``["leaf0", "spine1"]``, degradations).
    """
    num_hosts = config.num_leaves * config.hosts_per_leaf
    num_queries = (query_load_queries if query_load_queries is not None
                   else config.fabric_queries)
    workloads: List[WorkloadSpec] = [
        WorkloadSpec(
            kind="incast",
            rng_label="query",
            params={
                "query_size_bytes": query_size_bytes,
                "fanout": min(config.fabric_incast_fanout, num_hosts - 1),
                "arrival": "paced",
                "num_queries": num_queries,
            },
        )
    ]
    if background_kind == "websearch":
        if background_load > 0:
            workloads.append(
                WorkloadSpec(
                    kind="websearch",
                    rng_label="bg",
                    params={
                        "load": background_load,
                        "load_scope": "per_host",
                    },
                )
            )
    elif background_kind in ("all_to_all", "all_reduce"):
        workloads.append(
            WorkloadSpec(
                kind=background_kind,
                params={"flow_size_bytes": background_flow_size,
                        "start_time": 0.0},
            )
        )
    else:
        raise ValueError(f"unknown background kind {background_kind!r}")
    return ScenarioSpec(
        name=name,
        scheme=SchemeSpec(name=scheme, kwargs=dict(scheme_kwargs or {})),
        topology=TopologySpec(
            kind="leaf_spine",
            params={
                "num_leaves": config.num_leaves,
                "num_spines": config.num_spines,
                "hosts_per_leaf": config.hosts_per_leaf,
                "link_rate_bps": config.fabric_link_rate_bps,
                "buffer_bytes_per_port": (
                    buffer_bytes_per_port
                    if buffer_bytes_per_port is not None
                    else config.fabric_buffer_bytes_per_port
                ),
                "ecn_threshold_bytes": config.fabric_ecn_threshold_bytes,
            },
        ),
        workloads=workloads,
        transport=TransportSpec(protocol="dctcp",
                                config={"min_rto": config.min_rto}),
        fabric=fabric or FabricSpec(),
        duration=config.fabric_duration,
        run_slack=config.run_slack,
        seed=seed,
    )


def fat_tree_scenario(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.4,
    background_kind: str = "websearch",
    background_flow_size: int = 256 * KB,
    query_load_queries: Optional[int] = None,
    oversubscription: float = 1.0,
    scheme_kwargs: Optional[Dict[str, object]] = None,
    buffer_bytes_per_port: Optional[int] = None,
    fabric: Optional[FabricSpec] = None,
    name: str = "fat_tree",
) -> ScenarioSpec:
    """The fat-tree analogue of :func:`leaf_spine_scenario`.

    Paced incast queries plus a background workload on a k-ary fat-tree --
    the standing multi-stage stress scenario.  ``background_kind`` accepts
    ``websearch`` (per-host Poisson load), ``permutation`` (one
    ``background_flow_size`` flow per host along a random derangement) or
    the collectives (``all_to_all`` / ``all_reduce``).  ``fabric`` injects
    the asymmetric fabric model (per-tier rates, failed/degraded links).
    """
    k = config.fattree_k
    hosts_per_edge = max(1, round(config.fattree_hosts_per_edge
                                  * oversubscription))
    num_hosts = k * (k // 2) * hosts_per_edge
    num_queries = (query_load_queries if query_load_queries is not None
                   else config.fabric_queries)
    workloads: List[WorkloadSpec] = [
        WorkloadSpec(
            kind="incast",
            rng_label="query",
            params={
                "query_size_bytes": query_size_bytes,
                "fanout": min(config.fabric_incast_fanout, num_hosts - 1),
                "arrival": "paced",
                "num_queries": num_queries,
            },
        )
    ]
    if background_kind == "websearch":
        if background_load > 0:
            workloads.append(
                WorkloadSpec(
                    kind="websearch",
                    rng_label="bg",
                    params={
                        "load": background_load,
                        "load_scope": "per_host",
                    },
                )
            )
    elif background_kind == "permutation":
        workloads.append(
            WorkloadSpec(
                kind="permutation",
                rng_label="bg",
                params={"flow_size_bytes": background_flow_size,
                        "pattern": "random"},
            )
        )
    elif background_kind in ("all_to_all", "all_reduce"):
        workloads.append(
            WorkloadSpec(
                kind=background_kind,
                params={"flow_size_bytes": background_flow_size,
                        "start_time": 0.0},
            )
        )
    else:
        raise ValueError(f"unknown background kind {background_kind!r}")
    return ScenarioSpec(
        name=name,
        scheme=SchemeSpec(name=scheme, kwargs=dict(scheme_kwargs or {})),
        topology=TopologySpec(
            kind="fat_tree",
            params={
                "k": k,
                "hosts_per_edge": hosts_per_edge,
                "link_rate_bps": config.fabric_link_rate_bps,
                "buffer_bytes_per_port": (
                    buffer_bytes_per_port
                    if buffer_bytes_per_port is not None
                    else config.fabric_buffer_bytes_per_port
                ),
                "ecn_threshold_bytes": config.fabric_ecn_threshold_bytes,
            },
        ),
        workloads=workloads,
        transport=TransportSpec(protocol="dctcp",
                                config={"min_rto": config.min_rto}),
        fabric=fabric or FabricSpec(),
        duration=config.fabric_duration,
        run_slack=config.run_slack,
        seed=seed,
    )


def packet_burst_scenario(
    scheme: str,
    scheme_kwargs: Optional[Dict[str, object]] = None,
    stream_specs: Optional[Iterable[Dict[str, object]]] = None,
    burst_specs: Optional[Iterable[Dict[str, object]]] = None,
    num_ports: int = 2,
    port_rate_bps: float = 0.0,
    buffer_bytes: int = 0,
    memory_bandwidth_bps: Optional[float] = None,
    duration: float = 0.0,
    fabric: Optional[FabricSpec] = None,
    name: str = "packet_burst",
) -> ScenarioSpec:
    """A P4-prototype-style packet-level scenario on a bare switch.

    ``stream_specs`` / ``burst_specs`` are parameter dicts for the
    ``packet_stream`` / ``packet_burst`` workloads (rate, port, timing).
    Streams are scheduled before bursts, in the given order, which pins the
    tie-break order of simultaneous arrivals.  ``fabric`` supports the bare
    switch's tier (``port``) and per-port ``[port_id, factor]`` degradation.
    """
    workloads: List[WorkloadSpec] = []
    for params in stream_specs or []:
        workloads.append(WorkloadSpec(kind="packet_stream", params=dict(params)))
    for params in burst_specs or []:
        workloads.append(WorkloadSpec(kind="packet_burst", params=dict(params)))
    topo_params: Dict[str, object] = {
        "num_ports": num_ports,
        "port_rate_bps": port_rate_bps,
        "buffer_bytes": buffer_bytes,
        "trace_queues": True,
    }
    if memory_bandwidth_bps is not None:
        topo_params["memory_bandwidth_bps"] = memory_bandwidth_bps
    return ScenarioSpec(
        name=name,
        scheme=SchemeSpec(name=scheme, kwargs=dict(scheme_kwargs or {})),
        topology=TopologySpec(kind="raw_switch", params=topo_params),
        workloads=workloads,
        fabric=fabric or FabricSpec(),
        duration=duration,
        run_slack=1.0,
    )
