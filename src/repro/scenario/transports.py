"""The transport-config registry: named TransportConfig profiles.

A *profile* is a reusable set of :class:`~repro.netsim.transport.base.
TransportConfig` keyword arguments (e.g. the paper's ns-3 simulations use a
5 ms minimum RTO, the DPDK testbed 2 ms).  A scenario's
:class:`~repro.scenario.spec.TransportSpec` names a profile and may override
individual fields on top of it.  The transport *protocol* (dctcp / cubic /
reno) is resolved separately through :mod:`repro.netsim.transport.factory`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.netsim.transport.base import TransportConfig
from repro.scenario.registry import Registry
from repro.scenario.spec import TransportSpec

_PROFILES: Registry[Dict[str, object]] = Registry("transport profile")


def register_transport_profile(name: str, config: Mapping[str, object],
                               override: bool = False) -> None:
    """Register TransportConfig kwargs under ``name``."""
    # Validate eagerly so a bad profile fails at registration, not mid-run.
    TransportConfig(**dict(config))
    _PROFILES.register(name, dict(config), override=override)


def unregister_transport_profile(name: str) -> None:
    _PROFILES.unregister(name)


def available_transport_profiles() -> List[str]:
    return _PROFILES.names()


def make_transport_config(spec: TransportSpec) -> TransportConfig:
    """Resolve a TransportSpec into a concrete TransportConfig."""
    base: Dict[str, object] = {}
    if spec.profile is not None:
        base.update(_PROFILES.get(spec.profile))
    base.update(spec.config)
    return TransportConfig(**base)


# ----------------------------------------------------------------------
# Built-in profiles
# ----------------------------------------------------------------------
register_transport_profile("default", {})
#: The paper's ns-3 large-scale simulations (Section 6.4).
register_transport_profile("paper_sim", {"min_rto": 5e-3})
#: The paper's DPDK software-switch testbed (Section 6.2).
register_transport_profile("testbed", {"min_rto": 2e-3})
