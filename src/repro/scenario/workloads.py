"""The workload registry: names -> traffic factories.

A workload factory takes a :class:`~repro.scenario.spec.WorkloadSpec` and a
:class:`WorkloadContext` and returns traffic:

* network-level factories (``incast``, ``poisson``/``websearch``,
  ``all_to_all``, ``all_reduce``, ``burst``, ``permutation``, ``hotspot``,
  ``trace_replay``, ``fixed``) return a list of
  :class:`~repro.workloads.spec.FlowSpec` (injected as transport flows);
* packet-level factories (``packet_stream`` / ``packet_burst``) return a list
  of ``(time, size_bytes, port)`` arrivals applied straight to the switch.

Each workload draws from an independent random substream derived from the
scenario seed and the workload's ``rng_label`` (defaulting to its kind), so
adding a workload to a scenario never perturbs the traffic of the others.
The built-in factories reproduce the exact generation arithmetic of the
original figure harnesses -- including the order in which random draws are
consumed -- so legacy experiments re-expressed as scenarios are
trace-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.scenario.registry import Registry
from repro.sim.rng import SeededRNG
from repro.workloads import (
    DATA_MINING_DISTRIBUTION,
    HotspotFlowGenerator,
    IncastQueryGenerator,
    PoissonFlowGenerator,
    WEB_SEARCH_DISTRIBUTION,
    all_reduce_flows,
    all_to_all_flows,
    flows_per_second_for_load,
    load_flow_trace,
    permutation_flows,
    trace_replay_flows,
)
from repro.workloads.burst import burst_arrivals, constant_rate_arrivals
from repro.workloads.spec import FlowSpec

#: Raw packet arrival: (time, size_bytes, ingress target port).
PacketArrival = Tuple[float, int, int]

_DISTRIBUTIONS = {
    "websearch": WEB_SEARCH_DISTRIBUTION,
    "datamining": DATA_MINING_DISTRIBUTION,
}


def _resolve_distribution(name: str):
    try:
        return _DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; "
            f"available: {', '.join(sorted(_DISTRIBUTIONS))}"
        ) from None


@dataclass
class WorkloadContext:
    """Everything a workload factory may consult about its scenario."""

    rng: SeededRNG
    duration: float
    hosts: List[int] = field(default_factory=list)
    link_rate_bps: float = 0.0
    topology: object = None


WorkloadFactory = Callable[..., Sequence]

_WORKLOADS: Registry[WorkloadFactory] = Registry("workload")


def register_workload(name: str, factory: WorkloadFactory,
                      override: bool = False) -> None:
    """Register a workload factory under ``name``."""
    _WORKLOADS.register(name, factory, override=override)


def unregister_workload(name: str) -> None:
    _WORKLOADS.unregister(name)


def available_workloads() -> List[str]:
    return _WORKLOADS.names()


def make_workload(kind: str, params: dict, ctx: WorkloadContext) -> Sequence:
    """Generate the traffic of one workload."""
    return _WORKLOADS.get(kind)(ctx, **params)


# ----------------------------------------------------------------------
# Network-level factories (FlowSpec lists)
# ----------------------------------------------------------------------
def _client_and_servers(ctx: WorkloadContext, client_index: int) -> Tuple[int, List[int]]:
    if not ctx.hosts:
        raise ValueError("this workload needs a network-level topology with hosts")
    client = ctx.hosts[client_index]
    servers = [h for h in ctx.hosts if h != client]
    return client, servers


def incast_workload(
    ctx: WorkloadContext,
    query_size_bytes: int,
    fanout: int,
    arrival: str = "poisson",
    queries_per_second: float = 0.0,
    num_queries: int = 0,
    client_index: int = 0,
    priority: int = 0,
    start_time: float = 0.0,
) -> List[FlowSpec]:
    """Partition-aggregate queries towards one client host.

    ``arrival="poisson"`` issues queries as a Poisson process at
    ``queries_per_second`` over the scenario duration (the DPDK-testbed
    harness); ``arrival="paced"`` issues exactly ``num_queries`` queries
    evenly spaced across the duration (the leaf-spine harness, deterministic
    even at tiny scales).
    """
    client, servers = _client_and_servers(ctx, client_index)
    if arrival == "paced":
        rate = max(1.0, num_queries / ctx.duration) if num_queries else 1.0
    else:
        rate = queries_per_second
    generator = IncastQueryGenerator(
        clients=[client],
        servers=servers,
        query_size_bytes=query_size_bytes,
        fanout=fanout,
        queries_per_second=rate,
        rng=ctx.rng,
        priority=priority,
    )
    if arrival == "poisson":
        return generator.generate(ctx.duration, start_time=start_time)
    if arrival == "paced":
        if num_queries <= 0:
            raise ValueError("paced incast needs num_queries > 0")
        flows: List[FlowSpec] = []
        spacing = ctx.duration / max(1, num_queries)
        for i in range(num_queries):
            flows.extend(generator.make_query(client, start_time + i * spacing))
        return flows
    raise ValueError(f"unknown incast arrival mode {arrival!r}")


def poisson_workload(
    ctx: WorkloadContext,
    load: float = 0.0,
    load_scope: str = "aggregate",
    flows_per_second: float = 0.0,
    distribution: str = "websearch",
    priority: int = 0,
    start_time: float = 0.0,
) -> List[FlowSpec]:
    """Poisson background flows with empirical sizes (1-to-1 pattern).

    Either give ``flows_per_second`` directly, or a target ``load``:

    * ``load_scope="aggregate"`` -- ``load`` is the fraction of one link's
      rate consumed by the aggregate background (the single-switch testbed
      convention);
    * ``load_scope="per_host"`` -- ``load`` is the fraction of every host's
      link rate, so the aggregate scales with the host count (the leaf-spine
      convention).
    """
    dist = _resolve_distribution(distribution)
    if not ctx.hosts:
        raise ValueError("this workload needs a network-level topology with hosts")
    if not flows_per_second:
        if load <= 0:
            return []
        # Preserve the exact float arithmetic of the original harnesses:
        # both conventions compute a per-sender rate first and then scale by
        # the host count, so expovariate draws are bit-identical.
        if load_scope == "aggregate":
            per_sender = flows_per_second_for_load(
                load, ctx.link_rate_bps, dist.mean(), num_senders=len(ctx.hosts))
        elif load_scope == "per_host":
            per_sender = flows_per_second_for_load(
                load, ctx.link_rate_bps, dist.mean(), num_senders=1)
        else:
            raise ValueError(f"unknown load_scope {load_scope!r}")
        flows_per_second = per_sender * len(ctx.hosts)
    generator = PoissonFlowGenerator(
        ctx.hosts,
        dist,
        flows_per_second=flows_per_second,
        rng=ctx.rng,
        priority=priority,
    )
    return generator.generate(ctx.duration, start_time=start_time)


def websearch_workload(ctx: WorkloadContext, **params) -> List[FlowSpec]:
    """Alias for ``poisson`` with the web-search size distribution."""
    params.setdefault("distribution", "websearch")
    return poisson_workload(ctx, **params)


def all_to_all_workload(
    ctx: WorkloadContext,
    flow_size_bytes: int,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """One collective round: every host sends to every other host."""
    return all_to_all_flows(ctx.hosts, flow_size_bytes,
                            start_time=start_time, priority=priority)


def all_reduce_workload(
    ctx: WorkloadContext,
    flow_size_bytes: int,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """One all-reduce round generated with the double binary tree."""
    return all_reduce_flows(ctx.hosts, flow_size_bytes,
                            start_time=start_time, priority=priority)


def burst_workload(
    ctx: WorkloadContext,
    burst_bytes: int,
    num_senders: int = 0,
    receiver_index: int = 0,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """A synchronized burst: several hosts each send one flow to a receiver.

    Unlike ``incast`` this is not query traffic (no QCT accounting) -- it is
    the network-level analogue of the P4 burst-absorption micro-benchmarks,
    useful on any topology with a clear convergence point (e.g. dumbbell).
    """
    if burst_bytes <= 0:
        raise ValueError("burst_bytes must be positive")
    receiver, senders = _client_and_servers(ctx, receiver_index)
    if num_senders:
        senders = senders[:num_senders]
    return [
        FlowSpec(src=sender, dst=receiver, size_bytes=burst_bytes,
                 start_time=start_time, priority=priority)
        for sender in senders
    ]


def permutation_workload(
    ctx: WorkloadContext,
    flow_size_bytes: int,
    pattern: str = "random",
    shift: int = 1,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """One flow per host along a permutation (random derangement or shift)."""
    if not ctx.hosts:
        raise ValueError("this workload needs a network-level topology with hosts")
    return permutation_flows(
        ctx.hosts, flow_size_bytes, rng=ctx.rng, pattern=pattern, shift=shift,
        start_time=start_time, priority=priority)


def hotspot_workload(
    ctx: WorkloadContext,
    hotspot_fraction: float = 0.5,
    num_hotspots: int = 1,
    hotspot_hosts: Optional[Sequence[int]] = None,
    load: float = 0.0,
    flows_per_second: float = 0.0,
    distribution: str = "websearch",
    flow_size_bytes: Optional[int] = None,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """Poisson flows with a skewed receiver matrix (hotspot traffic).

    Destinations fall into ``hotspot_hosts`` (default: the last
    ``num_hotspots`` hosts, which on multi-stage fabrics land in the last
    pod/leaf) with probability ``hotspot_fraction``.  Sizes come from the
    named empirical ``distribution`` unless ``flow_size_bytes`` pins them.
    Either give ``flows_per_second`` directly or an aggregate ``load``
    (fraction of one link's rate, the single-switch testbed convention).
    """
    if not ctx.hosts:
        raise ValueError("this workload needs a network-level topology with hosts")
    hotspots = (list(hotspot_hosts) if hotspot_hosts is not None
                else ctx.hosts[-max(1, int(num_hotspots)):])
    dist = None
    if flow_size_bytes is None:
        dist = _resolve_distribution(distribution)
    if not flows_per_second:
        if load <= 0:
            return []
        mean_bytes = dist.mean() if dist is not None else float(flow_size_bytes)
        flows_per_second = flows_per_second_for_load(
            load, ctx.link_rate_bps, mean_bytes, num_senders=1)
    generator = HotspotFlowGenerator(
        ctx.hosts,
        hotspots,
        flows_per_second=flows_per_second,
        rng=ctx.rng,
        hotspot_fraction=hotspot_fraction,
        size_distribution=dist,
        flow_size_bytes=flow_size_bytes,
        priority=priority,
    )
    return generator.generate(ctx.duration, start_time=start_time)


def trace_replay_workload(
    ctx: WorkloadContext,
    path: str,
    time_scale: float = 1.0,
    size_scale: float = 1.0,
    time_offset: float = 0.0,
    default_priority: int = 0,
) -> List[FlowSpec]:
    """Replay a recorded CSV/JSON flow trace as transport flows.

    ``path`` is resolved against the current working directory (scenario
    documents carry no directory context); use absolute paths in specs meant
    to run from elsewhere.  Host ids in the trace must exist in the
    topology -- the runner rejects unknown hosts at injection time.
    """
    del ctx  # trace flows are fully explicit; no rng, hosts from the file
    return trace_replay_flows(
        load_flow_trace(path),
        time_scale=time_scale,
        size_scale=size_scale,
        time_offset=time_offset,
        default_priority=default_priority,
    )


def fixed_workload(ctx: WorkloadContext, flows: Sequence[dict]) -> List[FlowSpec]:
    """Explicitly listed flows (src/dst/size_bytes/start_time[/priority...]).

    Dict keys mirror :class:`~repro.workloads.spec.FlowSpec`; ``flow_id`` and
    ``query_id`` may be given to pin identities (the deprecated-shim path
    uses this to preserve ids of pre-built flows), otherwise ids are
    auto-assigned at generation time.
    """
    del ctx  # fixed flows are position-independent
    specs: List[FlowSpec] = []
    for entry in flows:
        kwargs = dict(
            src=int(entry["src"]),
            dst=int(entry["dst"]),
            size_bytes=int(entry["size_bytes"]),
            start_time=float(entry.get("start_time", 0.0)),
            priority=int(entry.get("priority", 0)),
            query_id=(None if entry.get("query_id") is None
                      else int(entry["query_id"])),
        )
        if entry.get("flow_id") is not None:
            kwargs["flow_id"] = int(entry["flow_id"])
        specs.append(FlowSpec(**kwargs))
    return specs


# ----------------------------------------------------------------------
# Packet-level factories ((time, size, port) arrivals)
# ----------------------------------------------------------------------
def packet_stream_workload(
    ctx: WorkloadContext,
    rate_bps: float,
    port: int,
    duration: float = 0.0,
    start_time: float = 0.0,
    packet_bytes: int = 1500,
) -> List[PacketArrival]:
    """Back-to-back packets at ``rate_bps`` aimed at one egress ``port``."""
    window = duration or ctx.duration
    return [(t, size, port) for t, size in constant_rate_arrivals(
        rate_bps, window, packet_bytes=packet_bytes, start_time=start_time)]


def packet_burst_workload(
    ctx: WorkloadContext,
    burst_bytes: int,
    rate_bps: float,
    port: int,
    start_time: float = 0.0,
    packet_bytes: int = 1500,
) -> List[PacketArrival]:
    """A burst of ``burst_bytes`` sent back-to-back at ``rate_bps``."""
    del ctx
    return [(t, size, port) for t, size in burst_arrivals(
        burst_bytes, rate_bps, packet_bytes=packet_bytes, start_time=start_time)]


register_workload("incast", incast_workload)
register_workload("poisson", poisson_workload)
register_workload("websearch", websearch_workload)
register_workload("all_to_all", all_to_all_workload)
register_workload("all_reduce", all_reduce_workload)
register_workload("burst", burst_workload)
register_workload("permutation", permutation_workload)
register_workload("hotspot", hotspot_workload)
register_workload("trace_replay", trace_replay_workload)
register_workload("fixed", fixed_workload)
register_workload("packet_stream", packet_stream_workload)
register_workload("packet_burst", packet_burst_workload)
