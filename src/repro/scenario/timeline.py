"""Mid-run fabric event execution and recovery-time extraction.

:class:`FabricTimeline` turns a validated ``fabric.events`` list into
scheduled simulator callbacks (``sim.at`` -> :meth:`Network.fail_link` /
:meth:`repair_link` / :meth:`degrade_link`), so load-balancing policies and
buffer-sharing schemes can be compared under *churn*, not just static
degradation.  Events are scheduled before any workload is injected; at equal
timestamps the fabric change therefore fires before traffic scheduled at the
same instant -- a fixed, documented ordering (the same equal-timestamp
discipline the simulator applies everywhere).

Every ``fail`` event also starts a *recovery watch*: the cumulative
goodput-rate up to the failure (delivered bytes / sim time) becomes the
baseline, and read-only probes sample the windowed delivery rate after the
failure until it re-stabilizes at ``RECOVERY_THRESHOLD`` of the baseline.
The watch lands in the result document as ``fabric_events.recovery`` with a
finite ``recovery_time`` when the fabric recovered inside the horizon.
Probe callbacks read counters the hosts already maintain and are subtracted
from the reported event totals -- the same zero-perturbation discipline as
the telemetry bus.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: A failure counts as recovered when the windowed delivery rate is back at
#: this fraction of the pre-failure cumulative average.
RECOVERY_THRESHOLD = 0.9

#: Probe windows per run horizon (the recovery-time resolution).
PROBE_SLOTS = 64


class FabricTimeline:
    """Executes a fabric event timeline against a live network.

    Args:
        events: normalized event dicts (``FabricSpec.validate`` output).
        network: the :class:`~repro.netsim.network.Network` under test.
        horizon: the run horizon in sim seconds (``duration * run_slack``).

    Attributes:
        ticks: recovery-probe callbacks executed (read-only observers;
            the runner subtracts them from the reported event count, the
            same bookkeeping as telemetry sampler ticks.  The fail/repair/
            degrade applications themselves are *not* subtracted -- they
            genuinely change the simulation).
        applied: the events executed so far, in order, each annotated with
            the failed pair's packet counters at fail and repair time (the
            failure-window evidence: an untouched counter across the window
            proves the dead link carried nothing).
        recoveries: one watch record per fail event.
    """

    def __init__(self, events: List[Dict[str, object]], network,
                 horizon: float) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        self.events = [dict(event) for event in events]
        self.network = network
        self.horizon = float(horizon)
        self.window = self.horizon / PROBE_SLOTS
        self.ticks = 0
        self.applied: List[Dict[str, object]] = []
        self.recoveries: List[Dict[str, object]] = []
        self._scheduled = False

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self) -> None:
        """Register every event with the simulator (call once, before traffic)."""
        if self._scheduled:
            raise RuntimeError("fabric timeline already scheduled")
        self._scheduled = True
        sim = self.network.sim
        for event in self.events:
            self.network.check_fabric_event(event)
            sim.at(float(event["t"]), lambda e=event: self._apply(e))

    def _pair_packets(self, a: str, b: str) -> int:
        """Packets carried so far by both directions of the ``a <-> b`` pair."""
        forward, backward = self.network.link_pair(a, b)
        return forward.link.packets_carried + backward.link.packets_carried

    def _apply(self, event: Dict[str, object]) -> None:
        a, b = event["link"]
        record = dict(event)
        if event["action"] == "fail":
            self.network.fail_link(a, b)
            record["packets_carried_at_fail"] = self._pair_packets(a, b)
            self._start_watch(event)
        elif event["action"] == "repair":
            self.network.repair_link(a, b)
            record["packets_carried_at_repair"] = self._pair_packets(a, b)
        else:
            self.network.degrade_link(a, b, float(event["factor"]))
        self.applied.append(record)

    # ------------------------------------------------------------------
    # Recovery measurement
    # ------------------------------------------------------------------
    def _delivered_bytes(self) -> int:
        """Cumulative bytes delivered to all hosts (the goodput counter)."""
        return sum(host.received_bytes
                   for host in self.network.hosts.values())

    def _start_watch(self, event: Dict[str, object]) -> None:
        sim = self.network.sim
        t_fail = sim.now
        delivered = self._delivered_bytes()
        baseline = delivered / t_fail if t_fail > 0 and delivered > 0 else None
        watch: Dict[str, object] = {
            "link": list(event["link"]),
            "t_fail": t_fail,
            "baseline_rate_bps": None if baseline is None else baseline * 8,
            "recovered_at": None,
            "recovery_time": None,
        }
        self.recoveries.append(watch)
        if baseline is None:
            # Nothing was flowing before the failure; there is no rate to
            # re-stabilize against (recovery_time stays None).
            return
        self._schedule_probe(watch, baseline, delivered, 1)

    def _schedule_probe(self, watch: Dict[str, object], baseline: float,
                        prev_delivered: int, k: int) -> None:
        t = float(watch["t_fail"]) + k * self.window
        if t > self.horizon:
            return
        self.network.sim.at(
            t, lambda: self._probe(watch, baseline, prev_delivered, k))

    def _probe(self, watch: Dict[str, object], baseline: float,
               prev_delivered: int, k: int) -> None:
        self.ticks += 1
        delivered = self._delivered_bytes()
        rate = (delivered - prev_delivered) / self.window
        if rate >= RECOVERY_THRESHOLD * baseline:
            now = self.network.sim.now
            watch["recovered_at"] = now
            watch["recovery_time"] = now - float(watch["t_fail"])
            return
        self._schedule_probe(watch, baseline, delivered, k + 1)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def recovery_times(self) -> List[Optional[float]]:
        """The recovery time of each fail event (``None`` = not recovered)."""
        return [watch["recovery_time"] for watch in self.recoveries]

    def to_dict(self) -> Dict[str, object]:
        """The deterministic ``fabric_events`` section of the result document."""
        return {
            "window": self.window,
            "threshold": RECOVERY_THRESHOLD,
            "applied": [dict(record) for record in self.applied],
            "recovery": [dict(watch) for watch in self.recoveries],
        }
