"""Executes a :class:`~repro.scenario.spec.ScenarioSpec` and returns results.

The runner resolves each component through its registry (schemes, topologies,
workloads, transport profiles), instantiates the topology, generates every
workload from an independent seeded substream, injects the traffic, runs the
simulation, and wraps the outcome in a typed :class:`ScenarioResult`.

Injection order matters for reproducibility (simultaneous events fire in
scheduling order): query flows (``query_id`` set) are injected first, then
everything else, each group in workload-list order -- the exact order of the
original figure harnesses.

The runner does **not** reset the global flow/query id counters: experiments
run several scenarios in sequence and ids must keep incrementing across them
(they feed the ECMP path hash).  Call
:func:`repro.workloads.reset_workload_ids` first when a standalone run must
be reproducible in isolation (the campaign executor and the
``python -m repro.scenario run`` CLI both do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import available_schemes, make_buffer_manager
from repro.lb import available_load_balancers, make_load_balancer
from repro.metrics.flows import FlowStats
from repro.metrics.percentiles import mean, percentile
from repro.netsim.transport.factory import make_transport
from repro.scenario.spec import ScenarioSpec, WorkloadSpec
from repro.scenario.topologies import (
    LEVEL_SWITCH,
    available_topologies,
    make_topology,
    topology_level,
)
from repro.scenario.transports import make_transport_config
from repro.scenario.workloads import (
    WorkloadContext,
    available_workloads,
    make_workload,
)
from repro.sim.rng import SeededRNG
from repro.switchsim.packet import Packet
from repro.workloads.spec import FlowSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (bus uses spec)
    from repro.scenario.timeline import FabricTimeline
    from repro.telemetry.bus import TelemetryBus


@dataclass
class ScenarioResult:
    """Everything a harness needs from one scenario run.

    Attributes:
        spec: the executed scenario.
        topology: the instantiated topology object (network, switches,
            traces...).
        flow_stats: per-flow / per-query statistics; ``None`` for
            packet-level scenarios (they have no transport flows).
        level: ``network`` or ``switch``.
        events_executed: simulation events executed by the run (sampler
            and recovery-probe ticks excluded, so the count matches a
            telemetry-off run).
        final_time: the simulation clock when the run ended.
        telemetry: the sampling bus of a telemetry-enabled run (``None``
            otherwise); its document lands under ``to_dict()["telemetry"]``.
        timeline: the executed fabric event timeline of a run with
            ``fabric.events`` (``None`` otherwise); its document -- applied
            events plus per-failure recovery times -- lands under
            ``to_dict()["fabric_events"]``.
    """

    spec: ScenarioSpec
    topology: object
    flow_stats: Optional[FlowStats] = None
    level: str = "network"
    events_executed: int = 0
    final_time: float = 0.0
    telemetry: Optional["TelemetryBus"] = None
    timeline: Optional["FabricTimeline"] = None

    # -- uniform switch access -----------------------------------------
    def switches(self) -> List[object]:
        """All :class:`SharedMemorySwitch` instances of the topology."""
        nodes = self.topology.all_switches()
        return [getattr(node, "switch", node) for node in nodes]

    @property
    def switch(self):
        """The switch of a single-switch scenario (first switch otherwise)."""
        return self.switches()[0]

    @property
    def switch_stats(self):
        """Stats of the (first) switch -- the single-switch harness shape."""
        return self.switch.stats

    def total_drops(self) -> int:
        return sum(s.stats.total_lost_packets for s in self.switches())

    def total_expelled(self) -> int:
        return sum(s.stats.expelled_packets for s in self.switches())

    # -- summary ------------------------------------------------------
    def summary_row(self) -> Dict[str, object]:
        """One flat row of identity + headline metrics (campaign reports)."""
        row: Dict[str, object] = {
            "scenario": self.spec.name,
            "scheme": self.spec.scheme.name,
            "topology": self.spec.topology.kind,
            "seed": self.spec.seed,
        }
        # Only a non-default policy is identified: default (ecmp) rows keep
        # their pre-LB shape, so stored goldens and explicit-ecmp identity
        # stay byte-exact.
        if not self.spec.lb.is_default():
            row["lb"] = self.spec.lb.name
        for key, value in sorted(self.spec.scheme.kwargs.items()):
            if isinstance(value, (int, float, str, bool)):
                row[key] = value
        stats_drops = sum(s.stats.dropped_packets for s in self.switches())
        if self.flow_stats is not None:
            stats = self.flow_stats
            row["flows"] = len(stats.completed_flows())
            row["completion"] = round(stats.completion_fraction(), 4)
            fcts = stats.fct_values()
            if fcts:
                row["avg_fct_ms"] = mean(fcts) * 1e3
                row["p99_fct_ms"] = percentile(fcts, 99) * 1e3
                row["avg_fct_slowdown"] = mean(stats.fct_slowdowns())
            qcts = stats.qct_values()
            if qcts:
                row["queries"] = len(stats.completed_queries())
                row["avg_qct_ms"] = mean(qcts) * 1e3
                row["p99_qct_ms"] = percentile(qcts, 99) * 1e3
                row["avg_qct_slowdown"] = mean(stats.qct_slowdowns())
        row["drops"] = stats_drops
        row["expelled"] = self.total_expelled()
        if self.timeline is not None and self.timeline.recoveries:
            times = self.timeline.recovery_times()
            finite = [t for t in times if t is not None]
            # The headline: the slowest recovery, or None when some failure
            # never re-stabilized inside the horizon.
            row["recovery_ms"] = (max(finite) * 1e3
                                  if len(finite) == len(times) else None)
        return row

    def flow_records(self) -> List[Dict[str, object]]:
        """Per-flow identity + timing records, sorted by flow id.

        The shared flow section of :meth:`to_dict` documents and the
        ``artifacts["flows"]`` payload campaign stores persist: full
        identity (not just timing), so stored documents double as
        replayable traces *and* carry everything the analysis toolkit
        needs for FCT/slowdown CDFs.
        """
        if self.flow_stats is None:
            return []
        return [
            {
                "flow_id": record.flow_id,
                "src": record.src,
                "dst": record.dst,
                "size_bytes": record.size_bytes,
                "priority": record.priority,
                "start_time": record.start_time,
                "finish_time": record.finish_time,
            }
            for record in sorted(self.flow_stats.flows.values(),
                                 key=lambda r: r.flow_id)
        ]

    def to_dict(self) -> Dict[str, object]:
        """A deterministic plain-dict form of the run's observable outcome.

        Two executions of the same spec + seed must produce byte-identical
        ``json.dumps(result.to_dict())`` output -- across processes and
        regardless of what ran earlier -- which is exactly what the
        determinism regression tests pin.  Includes the full spec, headline
        summary, per-switch counters and the per-flow completion times.
        """
        doc: Dict[str, object] = {
            "spec": self.spec.to_dict(),
            "level": self.level,
            "summary": self.summary_row(),
            "switches": [s.stats.summary() for s in self.switches()],
            # Every stored run self-reports its size: the perf harness is no
            # longer the only place events/sec can be computed from.
            "sim": {
                "events_executed": self.events_executed,
                "final_time": self.final_time,
            },
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry.to_dict()
        if self.timeline is not None:
            doc["fabric_events"] = self.timeline.to_dict()
        if self.flow_stats is not None:
            # Full per-flow identity (not just timing): the document doubles
            # as a flow trace, replayable via the ``trace_replay`` workload.
            doc["flows"] = self.flow_records()
            # The ideal-FCT context (repro.metrics.flows.ideal_fct inputs):
            # with it, any reader of the stored document can recompute
            # per-flow slowdowns without rebuilding the topology.
            doc["fct"] = {
                "bottleneck_bps": self.flow_stats.bottleneck_bps,
                "base_rtt": self.flow_stats.base_rtt,
            }
        return doc

    def to_experiment_result(self):
        """The summary row wrapped as an ExperimentResult (campaign layer)."""
        # Imported lazily: repro.experiments.common builds on this package.
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            f"scenario:{self.spec.name}",
            notes=self.spec.label(),
        )
        result.add_row(**self.summary_row())
        # Sampled series ride along as an artifact, so campaign ResultStore
        # entries of telemetry-enabled runs keep their queue dynamics.
        if self.telemetry is not None:
            result.artifacts["telemetry"] = self.telemetry.to_dict()
        # Per-flow records + ideal-FCT context make every stored campaign
        # entry self-reporting: the analysis toolkit (repro.analysis) builds
        # FCT/slowdown CDFs straight from the store, no re-simulation.
        if self.flow_stats is not None:
            result.artifacts["flows"] = {
                "bottleneck_bps": self.flow_stats.bottleneck_bps,
                "base_rtt": self.flow_stats.base_rtt,
                "records": self.flow_records(),
            }
        return result


class ScenarioRunner:
    """Instantiates and executes scenarios."""

    def run(self, spec: ScenarioSpec,
            on_sample: Optional[Callable] = None) -> ScenarioResult:
        if spec.engine.shards > 1:
            # Conservative-parallel execution: the sharded executor spawns
            # one process per shard and merges a byte-identical result.
            from repro.sim.shard import run_sharded

            return run_sharded(spec, on_sample=on_sample)
        self.validate(spec)
        manager_factory = lambda: make_buffer_manager(  # noqa: E731
            spec.scheme.name, **spec.scheme.kwargs)
        level = topology_level(spec.topology.kind)
        topology_params = spec.resolved_topology_params()
        if not spec.engine.is_default():
            # Non-default kernel: hand the topology a pre-built simulator.
            # The default path stays untouched (builders construct their own
            # Simulator), so heap-kernel runs are byte-identical to pre-PR.
            from repro.sim.engine import Simulator
            from repro.sim.kernel import make_kernel

            topology_params["simulator"] = Simulator(
                kernel=make_kernel(spec.engine.kernel))
        topology = make_topology(spec.topology.kind, manager_factory,
                                 **topology_params)
        self._apply_alpha_overrides(spec, topology)
        self._apply_load_balancer(spec, topology, level)

        # The fabric event timeline is scheduled before any traffic, so an
        # event at the same instant as a flow arrival fires first -- a
        # fixed, documented equal-timestamp ordering.
        timeline = None
        if spec.fabric.events:
            from repro.scenario.timeline import FabricTimeline

            timeline = FabricTimeline(spec.fabric.events, topology.network,
                                      horizon=spec.duration * spec.run_slack)
            timeline.schedule()

        # The bus attaches before any traffic is scheduled, so its tick
        # events are read-only observers interleaved with (but never
        # perturbing) the workload -- a telemetry-enabled run produces the
        # same outcome document as a disabled one, plus the series.
        bus = None
        if spec.telemetry.enabled:
            from repro.telemetry.bus import TelemetryBus

            bus = TelemetryBus(spec.telemetry, topology.sim,
                               horizon=spec.duration * spec.run_slack)
            bus.attach(topology)
            bus.on_sample = on_sample
            bus.start()

        rng = SeededRNG(spec.seed)
        hosts = list(getattr(topology, "hosts", []) or [])
        link_rate_bps = getattr(topology, "link_rate_bps", 0.0)
        generated: List[Tuple[WorkloadSpec, Sequence]] = []
        for workload in spec.workloads:
            ctx = WorkloadContext(
                rng=rng.child(workload.rng_label or workload.kind),
                duration=spec.duration,
                hosts=hosts,
                link_rate_bps=link_rate_bps,
                topology=topology,
            )
            generated.append(
                (workload, make_workload(workload.kind, workload.params, ctx))
            )

        if level == LEVEL_SWITCH:
            self._run_packet_level(spec, topology, generated)
            flow_stats = None
        else:
            self._run_network_level(spec, topology, generated)
            flow_stats = topology.network.flow_stats
        sim = topology.sim
        # Sampler and recovery-probe ticks are excluded so the reported
        # size reflects the traffic, not the observers.
        events = sim.events_executed - (bus.ticks if bus is not None else 0)
        if timeline is not None:
            events -= timeline.ticks
        return ScenarioResult(spec=spec, topology=topology,
                              flow_stats=flow_stats, level=level,
                              events_executed=events, final_time=sim.now,
                              telemetry=bus, timeline=timeline)

    # -- validation ----------------------------------------------------
    def validate(self, spec: ScenarioSpec) -> None:
        """Fail fast with a precise message instead of mid-simulation."""
        if spec.scheme.name not in available_schemes():
            raise KeyError(
                f"unknown scheme {spec.scheme.name!r}; "
                f"available: {', '.join(available_schemes())}")
        if spec.topology.kind not in available_topologies():
            raise KeyError(
                f"unknown topology {spec.topology.kind!r}; "
                f"available: {', '.join(available_topologies())}")
        for workload in spec.workloads:
            if workload.kind not in available_workloads():
                raise KeyError(
                    f"unknown workload {workload.kind!r}; "
                    f"available: {', '.join(available_workloads())}")
        if spec.duration <= 0:
            raise ValueError("scenario duration must be positive")
        if spec.run_slack <= 0:
            raise ValueError("run_slack must be positive")
        spec.fabric.validate()
        spec.lb.validate()
        if spec.lb.name not in available_load_balancers():
            raise KeyError(
                f"unknown load balancer {spec.lb.name!r}; "
                f"available: {', '.join(available_load_balancers())}")
        # Policy kwargs resolve eagerly (typos raise here, not mid-run).
        make_load_balancer(spec.lb.name, **spec.lb.kwargs)
        if topology_level(spec.topology.kind) == LEVEL_SWITCH:
            if not spec.lb.is_default():
                raise ValueError(
                    f"lb {spec.lb.name!r} needs a network-level topology; "
                    f"{spec.topology.kind!r} has no routing stage")
            if spec.fabric.events:
                raise ValueError(
                    "fabric.events needs a network-level topology; "
                    f"{spec.topology.kind!r} has no links to fail or repair")
        spec.telemetry.validate()
        spec.engine.validate()
        if spec.engine.shards > 1:
            if topology_level(spec.topology.kind) == LEVEL_SWITCH:
                raise ValueError(
                    f"engine.shards > 1 needs a network-level topology; "
                    f"{spec.topology.kind!r} has no link graph to "
                    "partition")
            if spec.fabric.events:
                raise ValueError(
                    "engine.shards > 1 cannot run a fabric event timeline "
                    "yet: mid-run failures would change cut-link state "
                    "under the conservative lookahead.  Static "
                    "fabric.failures/degraded are supported")
        spec.resolved_topology_params()  # fabric/topology collision check
        # Protocol names resolve eagerly too (raises KeyError on typos).
        make_transport(spec.transport.protocol)
        for workload in spec.workloads:
            if workload.transport is not None:
                make_transport(workload.transport)

    # -- internals -----------------------------------------------------
    def _apply_load_balancer(self, spec: ScenarioSpec, topology,
                             level: str) -> None:
        """Bind one fresh policy instance per switch (never shared state).

        Runs for *every* network-level scenario, including the ecmp
        default: binding a passthrough is a no-op on the node, so the
        default data path is byte-identical to pre-LB behaviour while the
        attach machinery itself stays exercised.
        """
        if level == LEVEL_SWITCH:
            return  # bare switches have no routing stage (validate rejects
            # non-default lb there)
        for node in topology.all_switches():
            node.set_load_balancer(
                make_load_balancer(spec.lb.name, **spec.lb.kwargs))

    def _apply_alpha_overrides(self, spec: ScenarioSpec, topology) -> None:
        if not spec.alpha_overrides:
            return
        nodes = topology.all_switches()
        for node in nodes:
            switch = getattr(node, "switch", node)
            for queue in switch.queue_views():
                if queue.class_index in spec.alpha_overrides:
                    queue.alpha_override = spec.alpha_overrides[queue.class_index]

    def _run_network_level(self, spec, topology, generated) -> None:
        network = topology.network
        network.set_transport_config(make_transport_config(spec.transport))
        default_protocol = spec.transport.protocol
        seen_ids: Dict[int, str] = {}
        for workload, flows in generated:
            if any(not isinstance(f, FlowSpec) for f in flows):
                raise ValueError(
                    f"workload {workload.kind!r} produced raw packet arrivals; "
                    "it needs a packet-level topology (e.g. raw_switch)")
            for flow in flows:
                # FlowStats keys records by flow_id and would silently
                # overwrite on collision, corrupting every metric.  Pinned
                # ids (a 'fixed' workload replayed after the id counter was
                # reset) are the one way to get here.
                if flow.flow_id in seen_ids:
                    raise ValueError(
                        f"duplicate flow_id {flow.flow_id}: workloads "
                        f"{seen_ids[flow.flow_id]!r} and {workload.kind!r} "
                        "both produced it.  Drop the pinned 'flow_id' "
                        "entries from the fixed workload (or build it with "
                        "keep_ids=False) so ids are auto-assigned.")
                seen_ids[flow.flow_id] = workload.kind
        # Query flows first, then the rest, each in workload-list order.
        for query_pass in (True, False):
            for workload, flows in generated:
                group = [f for f in flows
                         if (f.query_id is not None) == query_pass]
                if group:
                    network.inject_flows(
                        group, transport=workload.transport or default_protocol)
        network.run(until=spec.duration * spec.run_slack)

    def _run_packet_level(self, spec, topology, generated) -> None:
        sim = topology.sim
        switch = topology.switch
        # Packet-level arrivals die inside the switch (drop or sink
        # transmit), so drawing them from the kernel's pool closes the
        # recycle loop on the pooled kernel.
        pool = sim.kernel.packet_pool
        make_packet = Packet if pool is None else pool.acquire
        for workload, arrivals in generated:
            if any(isinstance(a, FlowSpec) for a in arrivals):
                raise ValueError(
                    f"workload {workload.kind!r} produced transport flows; "
                    "it needs a network-level topology")
            for time, size, port in arrivals:
                sim.at(time, lambda s=size, p=port: switch.receive(
                    make_packet(size_bytes=s), p))
        sim.run(until=spec.duration * spec.run_slack)


def run_scenario(spec: ScenarioSpec,
                 on_sample: Optional[Callable] = None) -> ScenarioResult:
    """Convenience one-shot execution of a scenario.

    ``on_sample`` is forwarded to the telemetry bus (called after every
    sampling tick; the live dashboard plugs in here) and ignored when the
    spec has telemetry disabled.
    """
    return ScenarioRunner().run(spec, on_sample=on_sample)
