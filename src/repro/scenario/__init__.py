"""Declarative scenarios: scheme x topology x workload x transport x lb.

The scenario layer composes five registries behind one JSON-expressible
:class:`~repro.scenario.spec.ScenarioSpec`:

* **schemes** -- :mod:`repro.core.registry` (promoted: default kwargs with
  the paper's parameter choices, collision protection);
* **topologies** -- :mod:`repro.scenario.topologies` (``single_switch``,
  ``leaf_spine``, ``fat_tree``, ``dumbbell``, ``raw_switch``, pluggable);
* **workloads** -- :mod:`repro.scenario.workloads` (``incast``, ``poisson``,
  ``websearch``, ``all_to_all``, ``all_reduce``, ``burst``, ``permutation``,
  ``hotspot``, ``trace_replay``, ``fixed``, packet-level streams/bursts);
* **transport configs** -- :mod:`repro.scenario.transports` (named
  TransportConfig profiles + per-workload protocol selection);
* **load balancers** -- :mod:`repro.lb` (``ecmp`` passthrough default,
  ``flowlet``, ``drill``, ``spray``), selected by the default-omitted
  ``lb`` spec section and bound per switch at attach time.

:class:`~repro.scenario.runner.ScenarioRunner` executes a spec and returns a
typed :class:`~repro.scenario.runner.ScenarioResult`.  The figure harnesses
build their runs through :mod:`repro.scenario.builders`; the campaign layer
sweeps any scenario dimension through its ``"scenario"`` grid type; and
``python -m repro.scenario run spec.json`` executes a stand-alone document.
"""

from repro.scenario.builders import (
    fat_tree_scenario,
    fixed_flows_workload,
    leaf_spine_scenario,
    packet_burst_scenario,
    single_switch_scenario,
)
from repro.scenario.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.scenario.scales import ScenarioConfig, get_scale
from repro.scenario.spec import (
    EngineSpec,
    FabricSpec,
    LoadBalancerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TransportSpec,
    WorkloadSpec,
)
from repro.scenario.topologies import (
    available_topologies,
    make_topology,
    register_topology,
    topology_level,
    unregister_topology,
)
from repro.scenario.transports import (
    available_transport_profiles,
    make_transport_config,
    register_transport_profile,
    unregister_transport_profile,
)
from repro.scenario.workloads import (
    WorkloadContext,
    available_workloads,
    make_workload,
    register_workload,
    unregister_workload,
)

__all__ = [
    "EngineSpec",
    "FabricSpec",
    "LoadBalancerSpec",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SchemeSpec",
    "TopologySpec",
    "TransportSpec",
    "WorkloadContext",
    "WorkloadSpec",
    "available_topologies",
    "available_transport_profiles",
    "available_workloads",
    "fat_tree_scenario",
    "fixed_flows_workload",
    "get_scale",
    "leaf_spine_scenario",
    "make_topology",
    "make_transport_config",
    "make_workload",
    "packet_burst_scenario",
    "register_topology",
    "register_transport_profile",
    "register_workload",
    "run_scenario",
    "single_switch_scenario",
    "topology_level",
    "unregister_topology",
    "unregister_transport_profile",
    "unregister_workload",
]
