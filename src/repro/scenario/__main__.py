"""``python -m repro.scenario`` entry point."""

import sys

from repro.scenario.experiment import main

if __name__ == "__main__":
    sys.exit(main())
