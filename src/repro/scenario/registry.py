"""A small generic name -> entry registry with collision protection.

Shared by the scenario layer's topology, workload and transport-profile
registries.  The scheme registry in :mod:`repro.core.registry` predates this
helper and keeps its function-based API, but follows the same rules:
registering an existing name raises unless ``override=True``.
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Maps names to entries; collisions raise unless explicitly overridden."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, entry: T, override: bool = False) -> None:
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")
        if name in self._entries and not override:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                "pass override=True to replace it"
            )
        self._entries[name] = entry

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
